//! **Parallel scaling benchmark** — the sharded two-level solve plus
//! parallel PF evaluation across mirror sizes and worker counts, with
//! hot-path columns for incremental KKT repair and the calendar-queue
//! dispatcher.
//!
//! For each mirror size N the serial baseline is the global Lagrange
//! solve followed by a serial PF evaluation; its wall time also yields
//! the single-thread solve throughput (elements/sec). Each (N, threads)
//! cell then runs the two-level sharded solve (outer bisection on the
//! shared multiplier, per-shard water-filling fanned out on the pool)
//! plus the chunked parallel PF evaluation, reporting wall-clock speedup
//! over the serial baseline and PF parity |pf − pf_serial| (the shard
//! equivalence argument says parity should sit at solver tolerance,
//! ≤ 1e-6).
//!
//! Two extra rows per size exercise the solve→dispatch hot path:
//!
//! * `repair/…` — tilt ~1% of the change rates, then patch the previous
//!   optimum by incremental KKT repair and certify it with the strict
//!   [`SolutionAudit`]; the `speedup` column is full-warm-re-solve time
//!   over repair time (the acceptance bound wants repair ≤ 10% of the
//!   warm re-solve, i.e. a ratio ≥ 10 at the largest N).
//! * `dispatch/…` — run the allocation-free calendar-queue dispatcher
//!   over the solved schedule for a few epochs and report events/sec
//!   (single-thread; the dispatcher is serial by design).
//!
//! Grid: N ∈ {10⁴, 10⁵, 10⁶, 10⁷} × threads ∈ {1, 2, 4, 8}; pass
//! `--smoke` for the CI-sized grid N ∈ {10⁴, 10⁵} × threads ∈ {1, 2, 4}.
//! Telemetry lands in `results/BENCH_scale.json`, stamped with the
//! available core count.
//!
//! Speedups only materialize with real cores — on a single-core box every
//! cell degenerates to ~1×, which the header line calls out.

use freshen_bench::{header, row, timed, BenchReport, BenchRun};
use freshen_core::exec::Executor;
use freshen_core::problem::Problem;
use freshen_core::SolutionAudit;
use freshen_engine::{EngineConfig, PollDispatcher, PollSource};
use freshen_obs::Recorder;
use freshen_solver::LagrangeSolver;

/// Shard count for the two-level solve: enough shards to keep every
/// worker fed at the largest thread count without shrinking the per-shard
/// water-filling below chunking granularity.
const SHARDS: usize = 32;

/// Epochs driven through the dispatcher per size (first epoch warms the
/// calendar queue's buckets; all epochs count toward throughput).
const DISPATCH_EPOCHS: usize = 3;

/// Deterministic synthetic mirror: striped rates, Zipf-flavoured access
/// weights, and a striped size mix — no RNG, so every run and every
/// worker count sees byte-identical inputs.
fn scale_problem(n: usize) -> Problem {
    let rates: Vec<f64> = (0..n).map(|i| 0.1 + (i % 17) as f64 * 0.3).collect();
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    let sizes: Vec<f64> = (0..n).map(|i| 0.25 + (i % 7) as f64 * 0.5).collect();
    Problem::builder()
        .change_rates(rates)
        .access_weights(weights)
        .sizes(sizes)
        .bandwidth(n as f64 / 4.0)
        .build()
        .expect("scale problem builds")
}

/// Tilt every `stride`-th change rate by ×1.5, returning the drifted
/// problem and the touched ids — the localized-drift input incremental
/// repair is built for.
fn drifted(problem: &Problem, stride: usize) -> (Problem, Vec<usize>) {
    let mut rates = problem.change_rates().to_vec();
    let mut touched = Vec::new();
    for i in (0..rates.len()).step_by(stride) {
        rates[i] *= 1.5;
        touched.push(i);
    }
    let after = Problem::builder()
        .change_rates(rates)
        .access_probs(problem.access_probs().to_vec())
        .sizes(problem.sizes().to_vec())
        .bandwidth(problem.bandwidth())
        .build()
        .expect("drifted problem builds");
    (after, touched)
}

/// Poll source for the dispatcher throughput row: alternating outcomes,
/// no RNG, O(1) per poll.
struct StripedSource;

impl PollSource for StripedSource {
    fn poll(&mut self, element: usize, _time: f64) -> bool {
        !element.is_multiple_of(3)
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, thread_grid): (&[usize], &[usize]) = if smoke {
        (&[10_000, 100_000], &[1, 2, 4])
    } else {
        (&[10_000, 100_000, 1_000_000, 10_000_000], &[1, 2, 4, 8])
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "# Sharded parallel solve+evaluate scaling ({} shards, {cores} cores available{})",
        SHARDS,
        if cores < *thread_grid.last().expect("non-empty grid") {
            "; speedup is core-bound on this machine"
        } else {
            ""
        }
    );
    header(&[
        "run",
        "n",
        "threads",
        "wall_seconds",
        "speedup",
        "pf",
        "pf_parity",
    ]);

    let mut bench = BenchReport::new("scale")
        .with_meta("smoke", smoke)
        .with_meta("shards", SHARDS)
        .with_meta("cores", cores)
        .with_meta(
            "sizes",
            sizes
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" "),
        )
        .with_meta(
            "threads",
            thread_grid
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" "),
        );
    for &n in sizes {
        let problem = scale_problem(n);

        // Serial baseline: global solve + serial evaluation. Wall time
        // doubles as the single-thread solve throughput figure.
        let serial_recorder = Recorder::enabled();
        let serial_solver = LagrangeSolver {
            recorder: serial_recorder.clone(),
            ..Default::default()
        };
        let (serial_solution, serial_wall) = timed(|| {
            let solution = serial_solver.solve(&problem).expect("serial solve");
            let pf = problem.perceived_freshness(&solution.frequencies);
            (solution, pf)
        });
        let (serial_solution, serial_pf) = serial_solution;
        let solve_elements_per_sec = n as f64 / serial_wall.max(f64::MIN_POSITIVE);
        println!("# solve/n={n}: {solve_elements_per_sec:.0} elements/sec single-thread");
        let label = format!("serial/n={n}");
        row(&label, &[n as f64, 1.0, serial_wall, 1.0, serial_pf, 0.0]);
        let mut serial_run = BenchRun::from_recorder(&label, serial_wall, &serial_recorder);
        serial_run.pf = Some(serial_pf);
        serial_run.events_per_sec = Some(solve_elements_per_sec);
        bench.push(serial_run);

        // Incremental repair vs. a full warm re-solve on ~1% local drift.
        // Both start from the same certified previous optimum; the repair
        // output must itself clear the strict KKT certificate.
        let stride = (n / 100).max(2);
        let (after, touched) = drifted(&problem, stride);
        let mu = serial_solution.multiplier.expect("serial solve converged");
        let inner_before = serial_recorder
            .counter_value("solver.inner_iters")
            .unwrap_or(0);
        let (full, full_wall) = timed(|| {
            serial_solver
                .solve_warm(&after, mu)
                .expect("full warm re-solve")
        });
        let (outcome, repair_wall) = timed(|| {
            serial_solver
                .repair(&after, &serial_solution, &touched)
                .expect("repair converges on local drift")
        });
        println!(
            "# repair/n={n}: {} probes ({} inner) vs full warm {} outer iters ({:?} inner)",
            outcome.probes,
            outcome.inner_iters,
            full.iterations,
            serial_recorder
                .counter_value("solver.inner_iters")
                .unwrap_or(0)
                - inner_before,
        );
        let repaired = outcome.solution;
        let certificate = SolutionAudit::default()
            .check(&after, &repaired, serial_solver.policy)
            .expect("audit runs");
        assert!(
            certificate.is_clean(),
            "n={n}: repaired solution failed the strict certificate: {}",
            certificate.to_json()
        );
        let repair_speedup = full_wall / repair_wall.max(f64::MIN_POSITIVE);
        let repair_pf = after.perceived_freshness(&repaired.frequencies);
        let label = format!("repair/n={n}");
        row(
            &label,
            &[
                n as f64,
                1.0,
                repair_wall,
                repair_speedup,
                repair_pf,
                (touched.len() as f64) / n as f64,
            ],
        );
        bench.push(BenchRun {
            name: label,
            wall_seconds: repair_wall,
            pf: Some(repair_pf),
            solver_iterations: None,
            events_per_sec: Some(repair_speedup),
            tail_error: None,
        });

        // Calendar-queue dispatcher throughput over the solved schedule
        // (single-thread by design: the drain is a serial total order).
        let config = EngineConfig {
            failure_rate: 0.05,
            max_retries: 1,
            seed: 7,
            ..EngineConfig::default()
        };
        let mut dispatcher =
            PollDispatcher::new(n, problem.bandwidth(), &config).expect("dispatcher builds");
        let priorities: Vec<f64> = problem
            .access_probs()
            .iter()
            .zip(problem.change_rates())
            .map(|(&p, &l)| p * l)
            .collect();
        let mut source = StripedSource;
        let (events, dispatch_wall) = timed(|| {
            let mut events = 0u64;
            for epoch in 0..DISPATCH_EPOCHS {
                let outcome = dispatcher
                    .run_epoch(
                        epoch,
                        epoch as f64,
                        1.0,
                        &serial_solution.frequencies,
                        &priorities,
                        &mut source,
                        &Recorder::disabled(),
                    )
                    .expect("dispatch epoch");
                events += outcome.dispatched;
            }
            events
        });
        let events_per_sec = events as f64 / dispatch_wall.max(f64::MIN_POSITIVE);
        println!("# dispatch/n={n}: {events_per_sec:.0} events/sec single-thread");
        let label = format!("dispatch/n={n}");
        row(
            &label,
            &[
                n as f64,
                1.0,
                dispatch_wall,
                events_per_sec,
                serial_pf,
                dispatcher.queue_grows() as f64,
            ],
        );
        bench.push(BenchRun {
            name: label,
            wall_seconds: dispatch_wall,
            pf: None,
            solver_iterations: None,
            events_per_sec: Some(events_per_sec),
            tail_error: None,
        });

        for &threads in thread_grid {
            let recorder = Recorder::enabled();
            let executor = Executor::thread_pool(threads).with_recorder(recorder.clone());
            let solver = LagrangeSolver {
                recorder: recorder.clone(),
                executor: executor.clone(),
                ..Default::default()
            };
            let (pf, wall) = timed(|| {
                let solution = solver
                    .solve_sharded(&problem, SHARDS)
                    .expect("sharded solve");
                problem.perceived_freshness_exec(&solution.frequencies, &executor)
            });
            let speedup = serial_wall / wall.max(f64::MIN_POSITIVE);
            let parity = (pf - serial_pf).abs();
            let label = format!("sharded/n={n}/threads={threads}");
            row(
                &label,
                &[n as f64, threads as f64, wall, speedup, pf, parity],
            );
            let mut run = BenchRun::from_recorder(&label, wall, &recorder);
            run.pf = Some(pf);
            bench.push(run);
        }
    }

    match bench.write() {
        Ok(path) => println!("# telemetry: {}", path.display()),
        Err(e) => eprintln!("# telemetry write failed: {e}"),
    }
}
