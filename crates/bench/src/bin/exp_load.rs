//! **Control-plane load benchmark** — probe-invariance of the served
//! engine under concurrent HTTP traffic.
//!
//! Two legs over the same seeded live workload with SLO rules armed:
//!
//! 1. **Unprobed reference** — headless run to completion; its report is
//!    the parity baseline.
//! 2. **Probed run** — the same run on an ephemeral port, hammered by
//!    N ≥ 4 client threads cycling `GET /status`, `GET /health`,
//!    `GET /metrics?format=prometheus`, `GET /timeseries`, and an
//!    occasional `POST /checkpoint` for the whole run. The final report
//!    must be **byte-identical** to the reference: control-plane load,
//!    checkpoint writes, and telemetry reads cannot perturb the
//!    deterministic run.
//!
//! Pass `--smoke` for a seconds-scale run (used by CI). Telemetry lands
//! in `results/BENCH_load.json` (request throughput, latency quantiles,
//! SLO evaluation counts).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use freshen_bench::{header, row, timed, BenchReport, BenchRun};
use freshen_core::problem::Problem;
use freshen_obs::{prometheus, Recorder, SloConfig};
use freshen_serve::{request, ExitReason, ServeConfig, ServeWorkload, Server};

struct Workload {
    n: usize,
    epochs: usize,
    access_rate: f64,
    seed: u64,
    probes: usize,
}

impl Workload {
    fn problem(&self) -> Problem {
        let rates: Vec<f64> = (0..self.n)
            .map(|i| 0.25 * 1.5f64.powi((i % 6) as i32))
            .collect();
        let weights: Vec<f64> = (0..self.n).map(|i| 1.0 / (i + 1) as f64).collect();
        Problem::builder()
            .change_rates(rates)
            .access_weights(weights)
            .bandwidth(self.n as f64 / 2.0)
            .build()
            .expect("workload problem builds")
    }

    fn serve_config(&self, dir: &std::path::Path, leg: &str) -> ServeConfig {
        ServeConfig {
            engine: freshen_engine::EngineConfig {
                epochs: self.epochs,
                warmup_epochs: self.epochs / 8,
                failure_rate: 0.05,
                seed: self.seed,
                // Arm the SLO engine so /health and the per-epoch
                // evaluation run under load too. The floor is modest —
                // the run may breach or not; either way the report
                // parity below must hold.
                slo: Some(SloConfig {
                    target_pf: 0.5,
                    ..SloConfig::default()
                }),
                ..freshen_engine::EngineConfig::default()
            },
            checkpoint_path: dir.join(format!("{leg}.snapshot")),
            ..ServeConfig::default()
        }
    }

    fn workload(&self) -> ServeWorkload {
        ServeWorkload::Live {
            problem: self.problem(),
            access_rate: self.access_rate,
        }
    }
}

/// What one probe thread brings home.
struct ProbeTally {
    ok: u64,
    errors: u64,
    latencies_us: Vec<f64>,
}

/// Nearest-rank quantile of a sorted latency list.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let workload = if smoke {
        Workload {
            n: 12,
            epochs: 16,
            access_rate: 150.0,
            seed: 23,
            probes: 4,
        }
    } else {
        Workload {
            n: 100,
            epochs: 48,
            access_rate: 1500.0,
            seed: 23,
            probes: 6,
        }
    };
    let dir = std::env::temp_dir().join("freshen-exp-load");
    std::fs::create_dir_all(&dir).expect("temp dir");

    println!(
        "# freshen-serve under load: {} probe threads vs {} elements, {} epochs",
        workload.probes, workload.n, workload.epochs
    );
    header(&["run", "epochs", "requests", "wall_s", "parity"]);
    let mut bench = BenchReport::new("load")
        .with_meta("smoke", smoke)
        .with_meta("elements", workload.n)
        .with_meta("epochs", workload.epochs)
        .with_meta("seed", workload.seed)
        .with_meta("probe_threads", workload.probes);

    // ------------------------------------------------------------------
    // Leg 1: unprobed reference run.
    // ------------------------------------------------------------------
    let config = workload.serve_config(&dir, "reference");
    let (reference, wall) = timed(|| {
        Server::new(workload.workload(), config)
            .expect("server builds")
            .run()
            .expect("reference run")
    });
    assert_eq!(reference.exit, ExitReason::Completed);
    let reference_json = reference.report.as_ref().expect("completed").to_json();
    row("unprobed", &[reference.epochs_run as f64, 0.0, wall, 1.0]);
    bench.push(BenchRun {
        name: "load-unprobed".into(),
        wall_seconds: wall,
        pf: Some(reference.report.as_ref().expect("completed").realized_pf),
        solver_iterations: None,
        events_per_sec: None,
        tail_error: None,
    });

    // ------------------------------------------------------------------
    // Leg 2: the same run probed by concurrent client threads.
    // ------------------------------------------------------------------
    let recorder = Recorder::enabled();
    let mut config = workload.serve_config(&dir, "probed");
    config.listen = Some("127.0.0.1:0".to_string());
    // Give probes a real window to land mid-run without dominating wall
    // time: the run lasts at least epochs × throttle.
    config.epoch_throttle = Some(Duration::from_millis(2));
    let server = Server::new(workload.workload(), config)
        .expect("server builds")
        .with_recorder(recorder.clone());
    let addr = server.local_addr().expect("listen address bound");
    let stop = Arc::new(AtomicBool::new(false));

    let probes: Vec<std::thread::JoinHandle<ProbeTally>> = (0..workload.probes)
        .map(|tid| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let routes = [
                    "/status",
                    "/health",
                    "/metrics?format=prometheus",
                    "/timeseries?limit=32",
                ];
                let mut tally = ProbeTally {
                    ok: 0,
                    errors: 0,
                    latencies_us: Vec::new(),
                };
                let mut turn = tid; // desynchronize the route cycles
                while !stop.load(Ordering::SeqCst) {
                    // One thread also exercises on-demand checkpoints.
                    let (method, path) = if tid == 0 && turn % 8 == 7 {
                        ("POST", "/checkpoint")
                    } else {
                        ("GET", routes[turn % routes.len()])
                    };
                    let start = Instant::now();
                    match request(addr, method, path) {
                        Ok((status, body)) => {
                            tally.latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
                            // /health legitimately serves 503 on breach.
                            assert!(
                                status == 200 || (path == "/health" && status == 503),
                                "{method} {path} -> {status}: {body}"
                            );
                            if path == "/health" {
                                assert!(body.contains("\"state\""), "{body}");
                            }
                            if path.starts_with("/metrics") {
                                prometheus::validate_exposition(&body)
                                    .expect("well-formed Prometheus exposition");
                            }
                            tally.ok += 1;
                        }
                        // Races with control-plane teardown at the end
                        // of the run: tolerated, counted, and backed
                        // off so the thread doesn't spin on refusals
                        // while the stop flag propagates.
                        Err(_) => {
                            tally.errors += 1;
                            std::thread::sleep(Duration::from_micros(500));
                        }
                    }
                    turn += 1;
                }
                tally
            })
        })
        .collect();

    let (outcome, wall) = timed(|| server.run().expect("probed run"));
    stop.store(true, Ordering::SeqCst);
    let mut ok = 0u64;
    let mut errors = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    for probe in probes {
        let tally = probe.join().expect("probe thread");
        ok += tally.ok;
        errors += tally.errors;
        latencies.extend(tally.latencies_us);
    }
    latencies.sort_unstable_by(f64::total_cmp);

    assert_eq!(outcome.exit, ExitReason::Completed);
    let probed_json = outcome.report.as_ref().expect("completed").to_json();
    assert_eq!(
        probed_json, reference_json,
        "control-plane load perturbed the deterministic run"
    );
    assert!(
        ok >= workload.probes as u64,
        "probes landed only {ok} requests"
    );
    row("probed", &[outcome.epochs_run as f64, ok as f64, wall, 1.0]);
    println!("# parity: probed report byte-identical to the unprobed reference");
    println!(
        "# requests: {ok} ok, {errors} teardown races; latency p50 {:.0}us p95 {:.0}us p99 {:.0}us",
        quantile(&latencies, 0.50),
        quantile(&latencies, 0.95),
        quantile(&latencies, 0.99),
    );

    bench.push(BenchRun {
        name: "load-probed".into(),
        wall_seconds: wall,
        pf: Some(outcome.report.as_ref().expect("completed").realized_pf),
        solver_iterations: None,
        events_per_sec: Some(ok as f64 / wall.max(f64::MIN_POSITIVE)),
        tail_error: None,
    });
    bench.set_meta("requests_ok", ok);
    bench.set_meta("requests_teardown_errors", errors);
    bench.set_meta(
        "request_p50_us",
        format!("{:.1}", quantile(&latencies, 0.50)),
    );
    bench.set_meta(
        "request_p95_us",
        format!("{:.1}", quantile(&latencies, 0.95)),
    );
    bench.set_meta(
        "request_p99_us",
        format!("{:.1}", quantile(&latencies, 0.99)),
    );
    for counter in [
        "obs.slo.evaluations",
        "obs.slo.warns",
        "obs.slo.breaches",
        "obs.slo.recoveries",
    ] {
        bench.set_meta(counter, recorder.counter_value(counter).unwrap_or(0));
    }

    match bench.write() {
        Ok(path) => println!("# telemetry: {}", path.display()),
        Err(e) => eprintln!("# telemetry write failed: {e}"),
    }
}
