//! **Fleet serving benchmark** — the determinism-per-tenant invariant
//! at fleet scale, measured.
//!
//! Three legs over one generated multi-tenant spec (scenarios cycle
//! through baseline / flash-crowd / diurnal, each tenant with its own
//! seed, budget, and SLO):
//!
//! 1. **Solo references** — every tenant as its own `freshen serve`
//!    run; the per-tenant parity baselines.
//! 2. **Probed fleet run** — all tenants behind one control plane,
//!    probe threads cycling per-tenant and fleet routes (the labeled
//!    `/metrics` exposition is validated every hit). Every tenant's
//!    final report must be **byte-identical** to its solo reference.
//! 3. **Kill/resume** — the same fleet drained at a mid-run round
//!    boundary and resumed from its snapshot directory; reports must
//!    again be byte-identical.
//!
//! Pass `--smoke` for a seconds-scale run (used by CI; ≥ 4 tenants).
//! The full run drives ≥ 8 tenants. Per-tenant and aggregate epoch
//! throughput lands in `results/BENCH_fleet.json`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use freshen_bench::{header, row, timed, BenchReport, BenchRun};
use freshen_fleet::{Fleet, FleetConfig, FleetSpec, TenantSpec};
use freshen_obs::{prometheus, Recorder};
use freshen_serve::{request, ExitReason, Server};

fn make_spec(tenants: usize, epochs: usize) -> FleetSpec {
    let scenarios = ["baseline", "flash-crowd", "diurnal"];
    let specs = (0..tenants)
        .map(|i| TenantSpec {
            seed: 1000 + 37 * i as u64,
            epochs,
            scenario: scenarios[i % scenarios.len()].into(),
            access_rate: 100.0 + 25.0 * i as f64,
            failure_rate: if i % 2 == 0 { 0.05 } else { 0.0 },
            slo_target_pf: if i % 3 == 0 { Some(0.3) } else { None },
            ..TenantSpec::new(&format!("tenant-{i:02}"), 8 + 2 * (i % 4))
        })
        .collect();
    let mut spec = FleetSpec::new(specs).expect("generated spec is valid");
    spec.checkpoint_every = 2;
    spec
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (tenants, epochs) = if smoke { (4, 10) } else { (8, 24) };
    let spec = make_spec(tenants, epochs);
    let dir = std::env::temp_dir().join("freshen-exp-fleet");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    println!("# freshen-fleet: {tenants} tenants x {epochs} epochs behind one control plane");
    header(&["run", "tenants", "epochs", "wall_s", "parity"]);
    let mut bench = BenchReport::new("fleet")
        .with_meta("smoke", smoke)
        .with_meta("tenants", tenants)
        .with_meta("epochs_per_tenant", epochs);

    // ------------------------------------------------------------------
    // Leg 1: every tenant as a solo serve run (the parity baselines).
    // ------------------------------------------------------------------
    let (solo_reports, solo_wall) = timed(|| {
        spec.tenants
            .iter()
            .map(|tenant| {
                let outcome = Server::new(
                    tenant.workload().expect("workload builds"),
                    tenant.serve_config(dir.join(format!("solo-{}", tenant.snapshot_file()))),
                )
                .expect("solo server builds")
                .run()
                .expect("solo run");
                outcome.report.expect("solo run completes").to_json()
            })
            .collect::<Vec<String>>()
    });
    row(
        "solo",
        &[tenants as f64, (tenants * epochs) as f64, solo_wall, 1.0],
    );
    bench.push(BenchRun {
        name: "fleet-solo-references".into(),
        wall_seconds: solo_wall,
        pf: None,
        solver_iterations: None,
        events_per_sec: Some((tenants * epochs) as f64 / solo_wall.max(f64::MIN_POSITIVE)),
        tail_error: None,
    });

    // ------------------------------------------------------------------
    // Leg 2: the fleet, probed while it runs.
    // ------------------------------------------------------------------
    let recorder = Recorder::enabled();
    let fleet = Fleet::new(
        spec.clone(),
        FleetConfig {
            listen: Some("127.0.0.1:0".into()),
            snapshot_dir: dir.join("fleet"),
            round_throttle: Some(Duration::from_millis(2)),
            ..FleetConfig::default()
        },
    )
    .expect("fleet builds")
    .with_recorder(recorder.clone());
    let addr = fleet.local_addr().expect("listen address bound");
    let stop = Arc::new(AtomicBool::new(false));

    let probes: Vec<std::thread::JoinHandle<(u64, u64)>> = (0..3)
        .map(|tid| {
            let stop = Arc::clone(&stop);
            let ids: Vec<String> = spec.tenants.iter().map(|t| t.id.clone()).collect();
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut expositions = 0u64;
                let mut turn = tid;
                while !stop.load(Ordering::SeqCst) {
                    let id = &ids[turn % ids.len()];
                    let routes = [
                        format!("/tenants/{id}/status"),
                        format!("/tenants/{id}/health"),
                        "/status".to_string(),
                        "/tenants".to_string(),
                        "/metrics?format=prometheus".to_string(),
                    ];
                    for route in &routes {
                        let Ok((status, body)) = request(addr, "GET", route) else {
                            std::thread::sleep(Duration::from_micros(500));
                            continue;
                        };
                        assert!(
                            status == 200 || status == 503,
                            "GET {route} -> {status}: {body}"
                        );
                        if route.contains("prometheus") && status == 200 && !body.is_empty() {
                            prometheus::validate_exposition(&body)
                                .expect("well-formed labeled exposition");
                            assert!(
                                body.contains("tenant=\"_fleet\""),
                                "fleet label group missing: {body}"
                            );
                            expositions += 1;
                        }
                        ok += 1;
                    }
                    turn += 1;
                }
                (ok, expositions)
            })
        })
        .collect();

    let (outcome, fleet_wall) = timed(|| fleet.run().expect("fleet run"));
    stop.store(true, Ordering::SeqCst);
    let mut requests_ok = 0u64;
    let mut expositions = 0u64;
    for probe in probes {
        let (ok, exp) = probe.join().expect("probe thread");
        requests_ok += ok;
        expositions += exp;
    }
    assert_eq!(outcome.exit, ExitReason::Completed);
    assert!(
        expositions > 0,
        "no labeled exposition was validated mid-run"
    );

    let fleet_reports: Vec<String> = outcome
        .tenants
        .iter()
        .map(|t| t.report.as_ref().expect("tenant completes").to_json())
        .collect();
    for ((tenant, got), want) in spec.tenants.iter().zip(&fleet_reports).zip(&solo_reports) {
        assert_eq!(
            got, want,
            "tenant `{}` diverged from its same-seed solo run",
            tenant.id
        );
    }
    row(
        "fleet",
        &[tenants as f64, (tenants * epochs) as f64, fleet_wall, 1.0],
    );
    println!("# parity: every tenant byte-identical to its solo reference");
    println!("# probes: {requests_ok} requests ok, {expositions} labeled expositions validated");

    for (tenant, result) in spec.tenants.iter().zip(&outcome.tenants) {
        bench.push(BenchRun {
            name: format!("fleet-tenant-{}", tenant.id),
            wall_seconds: fleet_wall,
            pf: result.report.as_ref().map(|r| r.realized_pf),
            solver_iterations: None,
            events_per_sec: Some(result.epoch as f64 / fleet_wall.max(f64::MIN_POSITIVE)),
            tail_error: None,
        });
    }
    bench.push(BenchRun {
        name: "fleet-aggregate".into(),
        wall_seconds: fleet_wall,
        pf: None,
        solver_iterations: None,
        events_per_sec: Some((tenants * epochs) as f64 / fleet_wall.max(f64::MIN_POSITIVE)),
        tail_error: None,
    });
    bench.set_meta("requests_ok", requests_ok);
    bench.set_meta("expositions_validated", expositions);
    bench.set_meta("checkpoints", outcome.checkpoints);

    // ------------------------------------------------------------------
    // Leg 3: kill the fleet at a mid-run round boundary, resume, and
    // demand byte-identical reports again.
    // ------------------------------------------------------------------
    let resume_dir = dir.join("fleet-resume");
    let (_, drain_wall) = timed(|| {
        Fleet::new(
            spec.clone(),
            FleetConfig {
                snapshot_dir: resume_dir.clone(),
                drain_after: Some(epochs / 2),
                ..FleetConfig::default()
            },
        )
        .expect("fleet builds")
        .run()
        .expect("drained leg")
    });
    let (resumed, resume_wall) = timed(|| {
        Fleet::new(
            spec.clone(),
            FleetConfig {
                snapshot_dir: resume_dir.clone(),
                resume_dir: Some(resume_dir.clone()),
                ..FleetConfig::default()
            },
        )
        .expect("fleet builds")
        .run()
        .expect("resumed leg")
    });
    assert_eq!(resumed.exit, ExitReason::Completed);
    let resumed_reports: Vec<String> = resumed
        .tenants
        .iter()
        .map(|t| t.report.as_ref().expect("tenant completes").to_json())
        .collect();
    assert_eq!(
        resumed_reports, solo_reports,
        "kill/resume at a round boundary perturbed a tenant"
    );
    row(
        "resume",
        &[
            tenants as f64,
            (tenants * epochs) as f64,
            drain_wall + resume_wall,
            1.0,
        ],
    );
    println!(
        "# parity: killed at round {} and resumed byte-identically",
        epochs / 2
    );
    bench.push(BenchRun {
        name: "fleet-kill-resume".into(),
        wall_seconds: drain_wall + resume_wall,
        pf: None,
        solver_iterations: None,
        events_per_sec: Some(
            (tenants * epochs) as f64 / (drain_wall + resume_wall).max(f64::MIN_POSITIVE),
        ),
        tail_error: None,
    });

    match bench.write() {
        Ok(path) => println!("# telemetry: {}", path.display()),
        Err(e) => eprintln!("# telemetry write failed: {e}"),
    }
}
