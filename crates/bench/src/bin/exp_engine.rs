//! **Online engine benchmark** (DESIGN.md §9) — the drift-gated online
//! runtime against the re-solve-every-epoch oracle on a drifting
//! workload.
//!
//! Both runs share the same seeds, the same live update processes, and
//! the same access stream: a step change in user interest at mid-run
//! (the canonical §9 drifting workload). The oracle re-solves the Core
//! Problem at the end of *every* epoch; the engine re-solves only when
//! Jeffreys drift between its freshly estimated `(p̂, λ̂)` and the active
//! schedule's baseline crosses the threshold. The claim being measured:
//! near-oracle realized perceived freshness at a small fraction of the
//! re-solves.
//!
//! Pass `--smoke` for a seconds-scale run (used by CI); the full run uses
//! a larger mirror and longer horizon. Telemetry lands in
//! `results/BENCH_engine.json` (steady-state events/sec, realized PF).

use freshen_bench::{header, row, timed, BenchReport, BenchRun};
use freshen_core::problem::Problem;
use freshen_engine::{
    DriftingAccessStream, Engine, EngineConfig, EngineReport, LivePollSource, ResolvePolicy,
};
use freshen_obs::Recorder;

struct Workload {
    n: usize,
    epochs: usize,
    access_rate: f64,
    drift_threshold: f64,
    seed: u64,
}

impl Workload {
    /// Ground-truth change rates: a geometric spread the engine must
    /// discover (its prior is deliberately uniform).
    fn true_rates(&self) -> Vec<f64> {
        (0..self.n)
            .map(|i| 0.25 * 1.6f64.powi((i % 7) as i32))
            .collect()
    }

    /// Interest profile before the switch: mass concentrated on the low
    /// indices.
    fn profile_before(&self) -> Vec<f64> {
        normalize((0..self.n).map(|i| 1.0 / (i + 1) as f64).collect())
    }

    /// Interest profile after the switch: the same law, reversed — a step
    /// change in what users care about.
    fn profile_after(&self) -> Vec<f64> {
        let mut p = self.profile_before();
        p.reverse();
        p
    }

    /// The engine's prior belief: uniform interest, uniform rates.
    fn prior(&self) -> Problem {
        Problem::builder()
            .change_rates(vec![1.0; self.n])
            .access_weights(vec![1.0; self.n])
            .bandwidth(self.n as f64 / 2.0)
            .build()
            .expect("prior problem builds")
    }

    fn config(&self, policy: ResolvePolicy) -> EngineConfig {
        EngineConfig {
            epochs: self.epochs,
            warmup_epochs: self.epochs / 10,
            drift_threshold: self.drift_threshold,
            resolve_policy: policy,
            failure_rate: 0.05,
            seed: self.seed,
            // Benchmarks always run with the poll-credit ledger armed:
            // a conservation breach invalidates the numbers, so it
            // aborts the experiment instead of being published.
            audit: true,
            ..EngineConfig::default()
        }
    }

    /// One full engine run under `policy`, on freshly rebuilt (but
    /// identically seeded) streams so both policies see the same world.
    fn run(&self, policy: ResolvePolicy) -> (EngineReport, BenchRun, f64) {
        let config = self.config(policy);
        let horizon = config.horizon();
        let accesses = DriftingAccessStream::new(
            &self.profile_before(),
            &self.profile_after(),
            self.access_rate,
            horizon / 2.0,
            horizon,
            self.seed ^ 0xACCE55,
        );
        let mut source =
            LivePollSource::new(&self.true_rates(), self.seed ^ 0x50_11, horizon).expect("source");
        let recorder = Recorder::enabled();
        let label = match policy {
            ResolvePolicy::DriftGated => "engine-drift-gated",
            ResolvePolicy::EveryEpoch => "engine-oracle",
        };
        let (report, wall) = timed(|| {
            let mut engine = Engine::new(&self.prior(), config)
                .expect("engine builds")
                .with_recorder(recorder.clone());
            let report = engine
                .run(accesses, &mut source)
                .expect("engine run succeeds");
            let ledger = engine.ledger().expect("audit is armed");
            assert!(
                ledger.is_clean(),
                "{label}: poll-credit ledger breached ({} epoch(s)); \
                 benchmark numbers would be invalid",
                ledger.violations()
            );
            eprintln!(
                "# {label}: ledger clean over {} epochs (max residual {:.2e})",
                ledger.epochs().len(),
                ledger.max_residual()
            );
            report
        });
        let run = BenchRun::from_recorder(label, wall, &recorder);
        (report, run, wall)
    }
}

fn normalize(mut v: Vec<f64>) -> Vec<f64> {
    let sum: f64 = v.iter().sum();
    for x in &mut v {
        *x /= sum;
    }
    v
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The drift threshold absorbs per-element estimation noise, which
    // grows with mirror size: larger mirrors need a wider dead-band for
    // the gate to separate real drift from jitter.
    let workload = if smoke {
        Workload {
            n: 20,
            epochs: 24,
            access_rate: 200.0,
            drift_threshold: 0.1,
            seed: 7,
        }
    } else {
        Workload {
            n: 200,
            epochs: 80,
            access_rate: 2000.0,
            drift_threshold: 0.3,
            seed: 7,
        }
    };

    println!(
        "# Online engine vs. re-solve-every-epoch oracle ({} elements, {} epochs, drift at mid-run)",
        workload.n, workload.epochs
    );
    header(&[
        "run",
        "realized_pf",
        "resolves",
        "resolve_fraction",
        "events",
        "events_per_sec",
    ]);

    let mut bench = BenchReport::new("engine")
        .with_meta("smoke", smoke)
        .with_meta("elements", workload.n)
        .with_meta("epochs", workload.epochs)
        .with_meta("access_rate", workload.access_rate)
        .with_meta("seed", workload.seed);
    let (gated, gated_run, _) = workload.run(ResolvePolicy::DriftGated);
    let (oracle, oracle_run, _) = workload.run(ResolvePolicy::EveryEpoch);
    for (report, run) in [(&gated, &gated_run), (&oracle, &oracle_run)] {
        row(
            &run.name,
            &[
                report.realized_pf,
                report.resolves as f64,
                report.resolve_fraction(),
                report.events as f64,
                run.events_per_sec.unwrap_or(0.0),
            ],
        );
        bench.push(run.clone());
    }

    println!(
        "# PF ratio (gated/oracle): {:.4}; re-solve ratio: {:.4}",
        gated.realized_pf / oracle.realized_pf,
        gated.resolve_fraction() / oracle.resolve_fraction().max(f64::MIN_POSITIVE),
    );
    match bench.write() {
        Ok(path) => println!("# telemetry: {}", path.display()),
        Err(e) => eprintln!("# telemetry write failed: {e}"),
    }
}
