//! **Figure 1** — the relationship among sync frequency `f`, change rate
//! `λ`, and access probability `p`: the solution locus
//! `p·∂F̄(f, λ)/∂f = μ` for three access probabilities at a fixed water
//! level `μ`.
//!
//! The paper's reading: for any given change rate, an element earns more
//! bandwidth as its access probability grows (the p = 0.4 curve sits above
//! p = 0.2 above p = 0.1), and a volatile element that earns *nothing* at
//! low interest demands substantial bandwidth once its interest doubles.

use freshen_bench::{header, row};
use freshen_solver::LagrangeSolver;

fn main() {
    // Water level chosen so the p=0.1 curve cuts off within the plotted
    // λ range (λ where p/λ = μ ⇒ cutoff at λ = p/μ = 5 for p = 0.1).
    let mu = 0.02;
    let solver = LagrangeSolver::default();
    let ps = [0.1, 0.2, 0.4];

    println!("# Figure 1: solution locus f(lambda) at mu = {mu}");
    header(&["lambda", "f_p0.1", "f_p0.2", "f_p0.4"]);
    let mut lam = 0.25;
    while lam <= 10.0 + 1e-9 {
        let cells: Vec<f64> = ps
            .iter()
            .map(|&p| solver.element_frequency(p, lam, 1.0, mu))
            .collect();
        row(&format!("{lam:.2}"), &cells);
        lam += 0.25;
    }
    println!("# note: a curve hitting 0 marks the starvation threshold λ = p/μ");
}
