//! **Age ablation** (DESIGN.md extension) — perceived *age* (expected
//! time since the first unseen change) under the PF-optimal and GF-optimal
//! schedules, across interest skew (aligned case).
//!
//! The weighted mean age is infinite as soon as *any* accessed object is
//! starved — and optimal-freshness schedules legitimately starve hopeless
//! objects (paper §7 notes "a significant number of objects do not get
//! refreshed at all"). So this experiment reports the two informative
//! components:
//!
//! * **starved interest mass** — the fraction of accesses landing on
//!   objects whose age grows without bound;
//! * **finite-part age** — the perceived age over the refreshed objects.
//!
//! Headline: as skew rises, the interest-blind GF schedule starves an
//! order of magnitude more *interest mass* than the PF schedule — those
//! users don't just see occasional staleness, they see unboundedly old
//! data.

use freshen_bench::{header, parallel_map, row, THETA_GRID};
use freshen_core::freshness::steady_state_age;
use freshen_core::problem::Problem;
use freshen_solver::{solve_general_freshness, solve_perceived_freshness};
use freshen_workload::scenario::{Alignment, Scenario};

/// (starved interest mass, finite-part perceived age) for a schedule.
fn age_components(problem: &Problem, freqs: &[f64]) -> (f64, f64) {
    let mut starved_mass = 0.0;
    let mut finite_age = 0.0;
    for (i, e) in problem.elements().enumerate() {
        if e.change_rate <= 0.0 || e.access_prob == 0.0 {
            continue;
        }
        if freqs[i] <= 0.0 {
            starved_mass += e.access_prob;
        } else {
            finite_age += e.access_prob * steady_state_age(e.change_rate, freqs[i]);
        }
    }
    (starved_mass, finite_age)
}

fn main() {
    println!("# Age ablation (aligned case): starved interest mass and finite-part age");
    header(&[
        "theta",
        "starved_mass_PF",
        "starved_mass_GF",
        "finite_age_PF",
        "finite_age_GF",
    ]);
    let results = parallel_map(&THETA_GRID, |&theta| {
        let problem = Scenario::table2(theta, Alignment::Aligned, 42)
            .problem()
            .expect("table2 scenario builds");
        let pf = solve_perceived_freshness(&problem).expect("PF solve");
        let gf = solve_general_freshness(&problem).expect("GF solve");
        let (sm_pf, fa_pf) = age_components(&problem, &pf.frequencies);
        let (sm_gf, fa_gf) = age_components(&problem, &gf.frequencies);
        (theta, sm_pf, sm_gf, fa_pf, fa_gf)
    });
    for (theta, sm_pf, sm_gf, fa_pf, fa_gf) in results {
        row(&format!("{theta:.1}"), &[sm_pf, sm_gf, fa_pf, fa_gf]);
    }
    println!("# starved mass = fraction of accesses hitting objects whose age is unbounded");
}
