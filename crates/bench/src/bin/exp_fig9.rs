//! **Figure 9** — perceived freshness vs wall-clock solve time (big case).
//!
//! Two families of points:
//! * `CLUSTER_LINE` — plain PF-partitioning (0 iterations) across a range
//!   of partition counts: each point is (time to partition+solve, PF);
//! * per-cluster-count series — for k ∈ {50, 150, 200, 300, 400}, the
//!   trajectory as k-Means iterations grow through
//!   {0, 1, 3, 5, 7, 10, 15, 25}.
//!
//! Paper shape: a few k-Means iterations on few partitions reach, in
//! seconds, quality that raw partitioning needs far more partitions (and
//! time) to match. Absolute seconds differ from the authors' 2003 testbed;
//! the trade-off's shape is the reproduction target.
//!
//! Honour `FRESHEN_N` to scale the mirror down for smoke tests.

use freshen_bench::{big_case_n, header, heuristic_pf, row, timed};
use freshen_heuristics::{HeuristicConfig, PartitionCriterion};
use freshen_workload::scenario::Scenario;

fn main() {
    let n = big_case_n();
    let problem = Scenario::table3_scaled(n, 42)
        .problem()
        .expect("table3 scenario builds");

    println!("# Figure 9: PF vs solve time (big case, N = {n})");
    header(&["series", "time_seconds", "perceived_freshness"]);

    // CLUSTER_LINE: 0-iteration PF-partitioning across partition counts.
    for k in [25usize, 50, 100, 150, 200, 300, 400, 500] {
        let (pf, secs) = timed(|| {
            heuristic_pf(
                &problem,
                HeuristicConfig {
                    criterion: PartitionCriterion::PerceivedFreshness,
                    num_partitions: k,
                    kmeans_iterations: 0,
                    ..Default::default()
                },
            )
        });
        row(&format!("CLUSTER_LINE_k{k}"), &[secs, pf]);
    }

    // Refinement trajectories per cluster count.
    for k in [50usize, 150, 200, 300, 400] {
        for iters in [0usize, 1, 3, 5, 7, 10, 15, 25] {
            let (pf, secs) = timed(|| {
                heuristic_pf(
                    &problem,
                    HeuristicConfig {
                        criterion: PartitionCriterion::PerceivedFreshness,
                        num_partitions: k,
                        kmeans_iterations: iters,
                        ..Default::default()
                    },
                )
            });
            row(&format!("{k}_CLUSTERS_it{iters}"), &[secs, pf]);
        }
    }
}
