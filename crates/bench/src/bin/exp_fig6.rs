//! **Figure 6** — sensitivity of the partitioning techniques to Zipf skew
//! θ under shuffled-change alignment (Table 2 setup, 50 partitions).
//!
//! Paper shape: perceived freshness rises with θ for every technique (at
//! high skew a few hot elements soak up the bandwidth and are easy to keep
//! fresh), but λ-partitioning cannot reach the level of the other three
//! because it ignores the dominant signal — access probability.

use freshen_bench::{header, heuristic_pf, parallel_map, row, THETA_GRID};
use freshen_heuristics::{HeuristicConfig, PartitionCriterion};
use freshen_workload::scenario::{Alignment, Scenario};

fn main() {
    let k = 50;
    let seed = 42;
    let criteria = [
        PartitionCriterion::PerceivedFreshness,
        PartitionCriterion::AccessProb,
        PartitionCriterion::ChangeRate,
        PartitionCriterion::AccessOverChange,
    ];
    println!("# Figure 6: PF vs theta per partitioning technique (shuffle-change, k = {k})");
    header(&[
        "theta",
        "PF_PARTITIONING",
        "P_PARTITIONING",
        "LAMBDA_PARTITIONING",
        "P_OVER_LAMBDA_PARTITIONING",
    ]);
    let results = parallel_map(&THETA_GRID, |&theta| {
        let problem = Scenario::table2(theta, Alignment::ShuffledChange, seed)
            .problem()
            .expect("table2 scenario builds");
        let cells: Vec<f64> = criteria
            .iter()
            .map(|&criterion| {
                heuristic_pf(
                    &problem,
                    HeuristicConfig {
                        criterion,
                        num_partitions: k,
                        ..Default::default()
                    },
                )
            })
            .collect();
        (theta, cells)
    });
    for (theta, cells) in results {
        row(&format!("{theta:.1}"), &cells);
    }
}
