//! **Table 1** — optimal sync frequencies for the paper's 5-element toy
//! example: change rates 1..5 per day, bandwidth 5 refreshes/day, three
//! access profiles (P1 uniform, P2 aligned skew, P3 reverse skew).
//!
//! Prints our solver's frequencies next to the paper's published values,
//! and writes per-profile telemetry (wall time, PF, solver iterations) to
//! `results/BENCH_table1.json`. Every solve is also run through the
//! strict KKT certificate ([`SolutionAudit`]) — a dirty certificate
//! aborts the experiment, so published numbers are always verified ones.

use freshen_bench::{timed, BenchReport, BenchRun};
use freshen_core::audit::SolutionAudit;
use freshen_core::policy::SyncPolicy;
use freshen_core::problem::Problem;
use freshen_obs::Recorder;
use freshen_solver::LagrangeSolver;

fn solve(name: &str, probs: Vec<f64>, report: &mut BenchReport) -> Vec<f64> {
    let problem = Problem::builder()
        .change_rates(vec![1.0, 2.0, 3.0, 4.0, 5.0])
        .access_probs(probs)
        .bandwidth(5.0)
        .build()
        .expect("toy problem is valid");
    let recorder = Recorder::enabled();
    let solver = LagrangeSolver {
        recorder: recorder.clone(),
        ..Default::default()
    };
    let (solution, wall) = timed(|| solver.solve(&problem).expect("toy problem solves"));
    let audit = SolutionAudit::default()
        .check(&problem, &solution, SyncPolicy::FixedOrder)
        .expect("audit accepts well-formed inputs");
    assert!(
        audit.is_clean(),
        "{name} failed its KKT certificate: {}",
        audit.to_json()
    );
    eprintln!(
        "{name}: certified (spread {:.2e}, budget residual {:.2e})",
        audit.max_spread, audit.budget_residual
    );
    let mut run = BenchRun::from_recorder(name, wall, &recorder);
    run.pf = Some(solution.perceived_freshness);
    report.push(run);
    solution.frequencies
}

fn print_row(name: &str, values: &[f64], paper: &[f64]) {
    print!("{name:<22}");
    for v in values {
        print!(" {v:5.2}");
    }
    print!("   | paper:");
    for p in paper {
        print!(" {p:5.2}");
    }
    println!();
}

fn main() {
    let mut report = BenchReport::new("table1")
        .with_meta("elements", 5)
        .with_meta("bandwidth", 5.0);
    println!("Table 1: optimal sync frequencies (elements change 1..5 times/day, B = 5/day)");
    print_row(
        "(a) change freq",
        &[1.0, 2.0, 3.0, 4.0, 5.0],
        &[1.0, 2.0, 3.0, 4.0, 5.0],
    );
    let p1 = solve("P1", vec![0.2; 5], &mut report);
    print_row("(b) sync freq (P1)", &p1, &[1.15, 1.36, 1.35, 1.14, 0.00]);
    let p2 = solve(
        "P2",
        (1..=5).map(|i| i as f64 / 15.0).collect(),
        &mut report,
    );
    print_row("(c) sync freq (P2)", &p2, &[0.33, 0.67, 1.00, 1.33, 1.67]);
    let p3 = solve(
        "P3",
        (1..=5).rev().map(|i| i as f64 / 15.0).collect(),
        &mut report,
    );
    print_row("(d) sync freq (P3)", &p3, &[1.68, 1.83, 1.49, 0.00, 0.00]);
    let path = report.write().expect("write BENCH_table1.json");
    eprintln!("telemetry: {}", path.display());
}
