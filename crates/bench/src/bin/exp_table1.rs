//! **Table 1** — optimal sync frequencies for the paper's 5-element toy
//! example: change rates 1..5 per day, bandwidth 5 refreshes/day, three
//! access profiles (P1 uniform, P2 aligned skew, P3 reverse skew).
//!
//! Prints our solver's frequencies next to the paper's published values.

use freshen_core::problem::Problem;
use freshen_solver::LagrangeSolver;

fn solve(probs: Vec<f64>) -> Vec<f64> {
    let problem = Problem::builder()
        .change_rates(vec![1.0, 2.0, 3.0, 4.0, 5.0])
        .access_probs(probs)
        .bandwidth(5.0)
        .build()
        .expect("toy problem is valid");
    LagrangeSolver::default()
        .solve(&problem)
        .expect("toy problem solves")
        .frequencies
}

fn print_row(name: &str, values: &[f64], paper: &[f64]) {
    print!("{name:<22}");
    for v in values {
        print!(" {v:5.2}");
    }
    print!("   | paper:");
    for p in paper {
        print!(" {p:5.2}");
    }
    println!();
}

fn main() {
    println!("Table 1: optimal sync frequencies (elements change 1..5 times/day, B = 5/day)");
    print_row(
        "(a) change freq",
        &[1.0, 2.0, 3.0, 4.0, 5.0],
        &[1.0, 2.0, 3.0, 4.0, 5.0],
    );
    let p1 = solve(vec![0.2; 5]);
    print_row("(b) sync freq (P1)", &p1, &[1.15, 1.36, 1.35, 1.14, 0.00]);
    let p2 = solve((1..=5).map(|i| i as f64 / 15.0).collect());
    print_row("(c) sync freq (P2)", &p2, &[0.33, 0.67, 1.00, 1.33, 1.67]);
    let p3 = solve((1..=5).rev().map(|i| i as f64 / 15.0).collect());
    print_row("(d) sync freq (P3)", &p3, &[1.68, 1.83, 1.49, 0.00, 0.00]);
}
