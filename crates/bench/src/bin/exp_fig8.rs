//! **Figure 8** — improvement in perceived freshness from k-Means
//! re-clustering of the PF-partitions (big case, Table 3 setup): PF vs
//! number of partitions for iteration budgets {0, 1, 3, 5, 10}.
//!
//! Paper shape: "with very few iterations, significant gains are seen" —
//! the 1-, 3-, 5-iteration curves lift visibly above the 0-iteration
//! (plain sorted partitioning) line, especially at small partition counts.
//!
//! Honour `FRESHEN_N` to scale the mirror down for smoke tests.

use freshen_bench::{
    big_case_n, header, heuristic_pf, parallel_map, row, KMEANS_ITERS, PARTITIONS_BIG,
};
use freshen_heuristics::{HeuristicConfig, PartitionCriterion};
use freshen_workload::scenario::Scenario;

fn main() {
    let n = big_case_n();
    let problem = Scenario::table3_scaled(n, 42)
        .problem()
        .expect("table3 scenario builds");
    println!("# Figure 8: PF after k-means refinement (big case, N = {n})");
    header(&[
        "num_partitions",
        "iters_0",
        "iters_1",
        "iters_3",
        "iters_5",
        "iters_10",
    ]);
    let grid: Vec<(usize, usize)> = PARTITIONS_BIG
        .iter()
        .flat_map(|&k| KMEANS_ITERS.iter().map(move |&it| (k, it)))
        .collect();
    let results = parallel_map(&grid, |&(k, iters)| {
        heuristic_pf(
            &problem,
            HeuristicConfig {
                criterion: PartitionCriterion::PerceivedFreshness,
                num_partitions: k,
                kmeans_iterations: iters,
                ..Default::default()
            },
        )
    });
    for (i, &k) in PARTITIONS_BIG.iter().enumerate() {
        let cells: Vec<f64> = (0..KMEANS_ITERS.len())
            .map(|j| results[i * KMEANS_ITERS.len() + j])
            .collect();
        row(&k.to_string(), &cells);
    }
}
