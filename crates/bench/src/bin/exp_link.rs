//! **Link-abstraction validation** (DESIGN.md extension) — the paper
//! plans in refresh *counts* and assumes instantaneous transfers. This
//! experiment sweeps the real link capacity under the optimal schedule
//! and reports measured vs planned perceived freshness and link
//! utilization, locating where the abstraction holds.
//!
//! Expected shape: measured PF tracks the plan once the link has a few ×
//! headroom over the planned load `Σ sᵢ·fᵢ`, sags from in-flight staleness
//! at low headroom, and collapses once the link saturates (utilization →
//! 1, unbounded queueing).

use freshen_bench::{header, row};
use freshen_sim::{SimConfig, Simulation};
use freshen_solver::solve_perceived_freshness;
use freshen_workload::scenario::{Alignment, Scenario};

fn main() {
    let problem = Scenario::table2(1.0, Alignment::ShuffledChange, 42)
        .problem()
        .expect("table2 scenario builds");
    let schedule = solve_perceived_freshness(&problem).expect("solvable");
    let planned_load = problem.bandwidth_used(&schedule.frequencies); // = 250/period
    let config = SimConfig {
        periods: 40.0,
        warmup_periods: 4.0,
        accesses_per_period: 5000.0,
        seed: 42,
    };

    println!(
        "# Link sweep: planned load {planned_load:.0} size-units/period, planned PF {:.4}",
        schedule.perceived_freshness
    );
    header(&[
        "headroom",
        "capacity",
        "measured_pf",
        "planned_pf",
        "link_utilization",
    ]);
    for headroom in [0.5, 0.8, 1.0, 1.5, 2.0, 4.0, 8.0, 16.0, 64.0] {
        let capacity = planned_load * headroom;
        let report = Simulation::new(&problem, &schedule.frequencies, config)
            .expect("valid simulation")
            .with_link_capacity(capacity)
            .run()
            .expect("simulation run");
        row(
            &format!("{headroom:.1}"),
            &[
                capacity,
                report.time_averaged_pf,
                report.analytic_pf,
                report.link_utilization.unwrap_or(0.0),
            ],
        );
    }
}
