//! **Figure 11** — Fixed Bandwidth Allocation (FBA) vs Fixed Frequency
//! Allocation (FFA) under PF/s-partitioning with variable object sizes
//! (sizes Pareto(1.1), change rate and size reversed — big objects rarely
//! change — access shuffled).
//!
//! Paper shape: FBA reaches a better solution with fewer partitions and
//! never loses to FFA — "Objects should be given a fixed bandwidth
//! allotment."

use freshen_bench::{header, heuristic_pf, parallel_map, row};
use freshen_heuristics::{AllocationPolicy, HeuristicConfig, PartitionCriterion};
use freshen_workload::scenario::{Alignment, Scenario, SizeAlignment, SizeDist};

fn main() {
    let n = 500;
    let problem = Scenario::builder()
        .num_objects(n)
        .updates_per_period(1000.0)
        .syncs_per_period(250.0)
        .zipf_theta(1.0)
        .update_std_dev(1.0)
        .alignment(Alignment::ShuffledChange) // access shuffled
        .size_dist(SizeDist::Pareto { shape: 1.1 })
        .size_alignment(SizeAlignment::ReverseOfChange) // big objects stable
        .seed(42)
        .build()
        .expect("fig11 scenario builds")
        .problem()
        .expect("fig11 problem");

    let ks: Vec<usize> = vec![5, 10, 25, 50, 75, 100, 150, 200, 250];
    println!("# Figure 11: FBA vs FFA under PF/s-partitioning (N = {n}, Pareto sizes)");
    header(&[
        "num_partitions",
        "FIXED_BANDWIDTH_FBA",
        "FIXED_FREQUENCY_FFA",
    ]);
    let results = parallel_map(&ks, |&k| {
        let pf_for = |allocation| {
            heuristic_pf(
                &problem,
                HeuristicConfig {
                    criterion: PartitionCriterion::PerceivedFreshnessPerSize,
                    num_partitions: k,
                    allocation,
                    ..Default::default()
                },
            )
        };
        (
            pf_for(AllocationPolicy::FixedBandwidth),
            pf_for(AllocationPolicy::FixedFrequency),
        )
    });
    for (&k, (fba, ffa)) in ks.iter().zip(results) {
        row(&k.to_string(), &[fba, ffa]);
    }
}
