//! **Figure 5 (a/b/c)** — perceived freshness vs number of partitions for
//! the four partitioning techniques plus the exact optimum (`best_case`),
//! under the three alignments (Table 2 setup, θ = 0.8).
//!
//! Paper shape: every technique climbs toward `best_case` as partitions
//! grow; under shuffled-change, PF-, P-, and P/λ-partitioning converge much
//! faster than λ-partitioning; under aligned/reverse the four are nearly
//! indistinguishable (the sort orders coincide).

use freshen_bench::{header, heuristic_pf, parallel_map, row, PARTITIONS_SMALL};
use freshen_heuristics::{HeuristicConfig, PartitionCriterion};
use freshen_solver::solve_perceived_freshness;
use freshen_workload::scenario::{Alignment, Scenario};

fn main() {
    let theta = 0.8;
    let seed = 42;
    let criteria = [
        PartitionCriterion::PerceivedFreshness,
        PartitionCriterion::AccessProb,
        PartitionCriterion::ChangeRate,
        PartitionCriterion::AccessOverChange,
    ];
    for (name, alignment) in [
        ("shuffle-change", Alignment::ShuffledChange),
        ("aligned", Alignment::Aligned),
        ("reverse", Alignment::Reverse),
    ] {
        let problem = Scenario::table2(theta, alignment, seed)
            .problem()
            .expect("table2 scenario builds");
        let best = solve_perceived_freshness(&problem)
            .expect("optimal solve")
            .perceived_freshness;
        println!("# Figure 5 ({name}): PF vs num partitions, theta = {theta}");
        header(&[
            "num_partitions",
            "PF_PARTITIONING",
            "P_PARTITIONING",
            "LAMBDA_PARTITIONING",
            "P_OVER_LAMBDA_PARTITIONING",
            "best_case",
        ]);
        let results = parallel_map(&PARTITIONS_SMALL, |&k| {
            let cells: Vec<f64> = criteria
                .iter()
                .map(|&criterion| {
                    heuristic_pf(
                        &problem,
                        HeuristicConfig {
                            criterion,
                            num_partitions: k,
                            ..Default::default()
                        },
                    )
                })
                .collect();
            (k, cells)
        });
        for (k, mut cells) in results {
            cells.push(best);
            row(&k.to_string(), &cells);
        }
        println!();
    }
}
