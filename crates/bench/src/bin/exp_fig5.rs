//! **Figure 5 (a/b/c)** — perceived freshness vs number of partitions for
//! the four partitioning techniques plus the exact optimum (`best_case`),
//! under the three alignments (Table 2 setup, θ = 0.8).
//!
//! Paper shape: every technique climbs toward `best_case` as partitions
//! grow; under shuffled-change, PF-, P-, and P/λ-partitioning converge much
//! faster than λ-partitioning; under aligned/reverse the four are nearly
//! indistinguishable (the sort orders coincide).
//!
//! Per-run telemetry (wall time, PF, solver iterations) lands in
//! `results/BENCH_fig5.json`.

use freshen_bench::{header, heuristic_run, parallel_map, row, BenchReport, PARTITIONS_SMALL};
use freshen_heuristics::{HeuristicConfig, PartitionCriterion};
use freshen_solver::solve_perceived_freshness;
use freshen_workload::scenario::{Alignment, Scenario};

fn main() {
    let theta = 0.8;
    let seed = 42;
    let mut report = BenchReport::new("fig5")
        .with_meta("theta", theta)
        .with_meta("seed", seed);
    let criteria = [
        PartitionCriterion::PerceivedFreshness,
        PartitionCriterion::AccessProb,
        PartitionCriterion::ChangeRate,
        PartitionCriterion::AccessOverChange,
    ];
    for (name, alignment) in [
        ("shuffle-change", Alignment::ShuffledChange),
        ("aligned", Alignment::Aligned),
        ("reverse", Alignment::Reverse),
    ] {
        let problem = Scenario::table2(theta, alignment, seed)
            .problem()
            .expect("table2 scenario builds");
        let best = solve_perceived_freshness(&problem)
            .expect("optimal solve")
            .perceived_freshness;
        println!("# Figure 5 ({name}): PF vs num partitions, theta = {theta}");
        header(&[
            "num_partitions",
            "PF_PARTITIONING",
            "P_PARTITIONING",
            "LAMBDA_PARTITIONING",
            "P_OVER_LAMBDA_PARTITIONING",
            "best_case",
        ]);
        let results = parallel_map(&PARTITIONS_SMALL, |&k| {
            let mut cells = Vec::with_capacity(criteria.len());
            let mut runs = Vec::with_capacity(criteria.len());
            for &criterion in &criteria {
                let (pf, run) = heuristic_run(
                    &format!("{name}/{criterion:?}/k={k}"),
                    &problem,
                    HeuristicConfig {
                        criterion,
                        num_partitions: k,
                        ..Default::default()
                    },
                );
                cells.push(pf);
                runs.push(run);
            }
            (k, cells, runs)
        });
        for (k, mut cells, runs) in results {
            cells.push(best);
            row(&k.to_string(), &cells);
            for run in runs {
                report.push(run);
            }
        }
        println!();
    }
    let path = report.write().expect("write BENCH_fig5.json");
    eprintln!("telemetry: {}", path.display());
}
