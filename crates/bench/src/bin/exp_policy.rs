//! **Policy ablation** (DESIGN.md extension) — why the paper adopts the
//! Fixed-Order synchronization policy: optimal perceived freshness under
//! the Fixed-Order freshness law vs the memoryless (Poisson) law, across
//! interest skew (Table 2 setup, shuffled-change).
//!
//! Expected shape: Fixed Order dominates at every θ — evenly spaced
//! refreshes never bunch up, so no interval is wastefully early or late.
//! The gap is the price a crawler pays for randomized revisit schedules.

use freshen_bench::{header, parallel_map, row, THETA_GRID};
use freshen_core::policy::SyncPolicy;
use freshen_solver::LagrangeSolver;
use freshen_workload::scenario::{Alignment, Scenario};

fn main() {
    println!("# Policy ablation: optimal PF under Fixed-Order vs Poisson syncing");
    header(&["theta", "FIXED_ORDER", "POISSON"]);
    let results = parallel_map(&THETA_GRID, |&theta| {
        let problem = Scenario::table2(theta, Alignment::ShuffledChange, 42)
            .problem()
            .expect("table2 scenario builds");
        let fixed = LagrangeSolver::default()
            .solve(&problem)
            .expect("fixed-order solve")
            .perceived_freshness;
        let poisson = LagrangeSolver {
            policy: SyncPolicy::Poisson,
            ..Default::default()
        }
        .solve(&problem)
        .expect("poisson solve")
        .perceived_freshness;
        (theta, fixed, poisson)
    });
    for (theta, fixed, poisson) in results {
        row(&format!("{theta:.1}"), &[fixed, poisson]);
    }
}
