//! **Figure 3 (a/b/c)** — perceived freshness vs Zipf skew θ for the
//! PF technique (our profile-aware optimum) and the GF technique (Cho &
//! Garcia-Molina's interest-blind optimum), under the three interest/
//! volatility alignments of §2.2.2 (Table 2 setup: 500 objects, 1000
//! updates/period, 250 syncs/period).
//!
//! Paper shape: at θ = 0 the two coincide; as skew grows PF_TECHNIQUE
//! rises toward 1 while GF_TECHNIQUE stalls — collapsing toward 0 in the
//! aligned case, where ignoring interest starves exactly the hot, volatile
//! objects users hammer.

use freshen_bench::{header, parallel_map, row, THETA_GRID};
use freshen_solver::{solve_general_freshness, solve_perceived_freshness};
use freshen_workload::scenario::{Alignment, Scenario};

fn main() {
    let seed = 42;
    for (name, alignment) in [
        ("shuffle-change", Alignment::ShuffledChange),
        ("aligned", Alignment::Aligned),
        ("reverse", Alignment::Reverse),
    ] {
        println!("# Figure 3 ({name}): PF vs theta, Table 2 setup");
        header(&["theta", "PF_TECHNIQUE", "GF_TECHNIQUE"]);
        let results = parallel_map(&THETA_GRID, |&theta| {
            let problem = Scenario::table2(theta, alignment, seed)
                .problem()
                .expect("table2 scenario builds");
            let pf = solve_perceived_freshness(&problem)
                .expect("PF solve")
                .perceived_freshness;
            let gf = solve_general_freshness(&problem)
                .expect("GF solve")
                .perceived_freshness;
            (theta, pf, gf)
        });
        for (theta, pf, gf) in results {
            row(&format!("{theta:.1}"), &[pf, gf]);
        }
        println!();
    }
}
