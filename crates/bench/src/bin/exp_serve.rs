//! **Service runtime benchmark** (DESIGN.md §12) — kill-and-resume
//! determinism and control-plane overhead of `freshen-serve`.
//!
//! Two legs:
//!
//! 1. **Recovery parity** — the same seeded live workload is run
//!    uninterrupted, then re-run as a chain of drained legs (killed at
//!    several epoch boundaries, each leg resumed from the previous
//!    leg's checkpoint). The final reports must be **byte-identical**:
//!    checkpoint/restore is exactness-or-error, never approximate.
//! 2. **Control plane** — a served run on an ephemeral port is probed
//!    over HTTP mid-run (`/status`, `/schedule`, `/metrics`,
//!    `POST /checkpoint`), then drained with `POST /shutdown` and
//!    resumed to completion; parity is asserted again, proving request
//!    timing cannot perturb the deterministic run.
//!
//! Pass `--smoke` for a seconds-scale run (used by CI). Telemetry lands
//! in `results/BENCH_serve.json` (epochs/sec served, checkpoint count,
//! request latency quantiles).

use std::time::Duration;

use freshen_bench::{header, row, timed, BenchReport, BenchRun};
use freshen_core::problem::Problem;
use freshen_obs::Recorder;
use freshen_serve::{request, ExitReason, ServeConfig, ServeWorkload, Server};

struct Workload {
    n: usize,
    epochs: usize,
    access_rate: f64,
    seed: u64,
}

impl Workload {
    /// Ground truth the engine must discover: geometric rate spread,
    /// harmonic interest.
    fn problem(&self) -> Problem {
        let rates: Vec<f64> = (0..self.n)
            .map(|i| 0.25 * 1.5f64.powi((i % 6) as i32))
            .collect();
        let weights: Vec<f64> = (0..self.n).map(|i| 1.0 / (i + 1) as f64).collect();
        Problem::builder()
            .change_rates(rates)
            .access_weights(weights)
            .bandwidth(self.n as f64 / 2.0)
            .build()
            .expect("workload problem builds")
    }

    fn serve_config(&self, dir: &std::path::Path, leg: &str) -> ServeConfig {
        ServeConfig {
            engine: freshen_engine::EngineConfig {
                epochs: self.epochs,
                warmup_epochs: self.epochs / 8,
                failure_rate: 0.05,
                seed: self.seed,
                ..freshen_engine::EngineConfig::default()
            },
            checkpoint_path: dir.join(format!("{leg}.snapshot")),
            ..ServeConfig::default()
        }
    }

    fn workload(&self) -> ServeWorkload {
        ServeWorkload::Live {
            problem: self.problem(),
            access_rate: self.access_rate,
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let workload = if smoke {
        Workload {
            n: 12,
            epochs: 16,
            access_rate: 150.0,
            seed: 11,
        }
    } else {
        Workload {
            n: 100,
            epochs: 64,
            access_rate: 1500.0,
            seed: 11,
        }
    };
    let dir = std::env::temp_dir().join("freshen-exp-serve");
    std::fs::create_dir_all(&dir).expect("temp dir");

    println!(
        "# freshen-serve: kill/resume determinism + control plane ({} elements, {} epochs)",
        workload.n, workload.epochs
    );
    header(&["run", "epochs", "checkpoints", "wall_s", "parity"]);
    let mut bench = BenchReport::new("serve")
        .with_meta("smoke", smoke)
        .with_meta("elements", workload.n)
        .with_meta("epochs", workload.epochs)
        .with_meta("seed", workload.seed);

    // ------------------------------------------------------------------
    // Leg 1: uninterrupted reference run.
    // ------------------------------------------------------------------
    let recorder = Recorder::enabled();
    let config = workload.serve_config(&dir, "reference");
    let (reference, wall) = timed(|| {
        Server::new(workload.workload(), config)
            .expect("server builds")
            .with_recorder(recorder.clone())
            .run()
            .expect("reference run")
    });
    assert_eq!(reference.exit, ExitReason::Completed);
    let reference_json = reference.report.as_ref().expect("completed").to_json();
    row(
        "uninterrupted",
        &[
            reference.epochs_run as f64,
            reference.checkpoints as f64,
            wall,
            1.0,
        ],
    );
    bench.push(BenchRun::from_recorder(
        "serve-uninterrupted",
        wall,
        &recorder,
    ));

    // ------------------------------------------------------------------
    // Leg 2: the same run killed at every quarter of the horizon, each
    // leg resumed from the previous leg's snapshot.
    // ------------------------------------------------------------------
    let recorder = Recorder::enabled();
    let kill_points = [
        workload.epochs / 4,
        workload.epochs / 4,
        workload.epochs / 4,
    ];
    let (chained_json, wall) = timed(|| {
        let mut resume_from = None;
        let mut legs = 0usize;
        for &kill_after in &kill_points {
            let mut config = workload.serve_config(&dir, "chain");
            config.drain_after = Some(kill_after);
            config.resume = resume_from.clone();
            let outcome = Server::new(workload.workload(), config.clone())
                .expect("server builds")
                .with_recorder(recorder.clone())
                .run()
                .expect("drained leg");
            assert_eq!(outcome.exit, ExitReason::Drained, "leg {legs} must drain");
            resume_from = Some(config.checkpoint_path.clone());
            legs += 1;
        }
        let mut config = workload.serve_config(&dir, "chain");
        config.resume = resume_from;
        let last = Server::new(workload.workload(), config)
            .expect("server builds")
            .with_recorder(recorder.clone())
            .run()
            .expect("final leg");
        assert_eq!(last.exit, ExitReason::Completed);
        eprintln!("# recovery chain: {} kills + 1 final leg", legs);
        last.report.expect("completed").to_json()
    });
    let parity = chained_json == reference_json;
    assert!(
        parity,
        "kill/resume chain diverged from the uninterrupted run"
    );
    row(
        "kill-resume-chain",
        &[
            workload.epochs as f64,
            kill_points.len() as f64 + 1.0,
            wall,
            1.0,
        ],
    );
    bench.push(BenchRun::from_recorder(
        "serve-kill-resume",
        wall,
        &recorder,
    ));

    // ------------------------------------------------------------------
    // Leg 3: control plane probed mid-run, then drained over HTTP and
    // resumed to completion.
    // ------------------------------------------------------------------
    let recorder = Recorder::enabled();
    let mut config = workload.serve_config(&dir, "control");
    config.listen = Some("127.0.0.1:0".to_string());
    // Give the probe thread time to land requests mid-run.
    config.epoch_throttle = Some(Duration::from_millis(3));
    let checkpoint_path = config.checkpoint_path.clone();
    let (outcome, wall) = timed(|| {
        let server = Server::new(workload.workload(), config)
            .expect("server builds")
            .with_recorder(recorder.clone());
        let addr = server.local_addr().expect("listen address bound");
        let probe = std::thread::spawn(move || {
            let (status, body) = request(addr, "GET", "/status").expect("/status");
            assert_eq!(status, 200, "{body}");
            assert!(body.contains("\"epoch\""), "{body}");
            let (status, body) = request(addr, "GET", "/schedule").expect("/schedule");
            assert_eq!(status, 200);
            assert!(body.contains("\"frequencies\""), "{body}");
            let (status, body) = request(addr, "GET", "/metrics").expect("/metrics");
            assert_eq!(status, 200);
            assert!(body.contains("serve.requests"), "{body}");
            let (status, _) = request(addr, "POST", "/checkpoint").expect("/checkpoint");
            assert_eq!(status, 200);
            // Let at least one throttled epoch pass so the on-demand
            // checkpoint lands, then drain gracefully.
            std::thread::sleep(Duration::from_millis(25));
            let (status, _) = request(addr, "POST", "/shutdown").expect("/shutdown");
            assert_eq!(status, 200);
        });
        let outcome = server.run().expect("served run");
        probe.join().expect("probe thread");
        outcome
    });
    assert_eq!(
        outcome.exit,
        ExitReason::Drained,
        "HTTP shutdown must drain the loop"
    );
    assert!(outcome.checkpoints >= 1, "drain writes a final checkpoint");
    row(
        "http-drained",
        &[
            outcome.epochs_run as f64,
            outcome.checkpoints as f64,
            wall,
            1.0,
        ],
    );
    bench.push(BenchRun::from_recorder(
        "serve-control-plane",
        wall,
        &recorder,
    ));

    // Resume the drained run headless and assert parity once more.
    let mut config = workload.serve_config(&dir, "control");
    config.resume = Some(checkpoint_path);
    let resumed = Server::new(workload.workload(), config)
        .expect("server builds")
        .run()
        .expect("resume after HTTP drain");
    assert_eq!(resumed.exit, ExitReason::Completed);
    assert_eq!(
        resumed.report.expect("completed").to_json(),
        reference_json,
        "HTTP-drained run diverged after resume"
    );
    println!("# parity: all resumed runs byte-identical to the uninterrupted reference");

    match bench.write() {
        Ok(path) => println!("# telemetry: {}", path.display()),
        Err(e) => eprintln!("# telemetry write failed: {e}"),
    }
}
