//! **Multi-tier relay benchmark** — edge-perceived freshness across
//! budget splits, deployments, and division policies.
//!
//! Four legs, every solve certified tier by tier with the strict KKT
//! audit (the binary panics on any uncertified point):
//!
//! 1. **Budget-split sweep** (two-tier chain): move a fraction φ of the
//!    total poll budget to the relay and the rest to the edge, solve the
//!    tiered program at each φ, and chart edge PF against the split —
//!    the curve the budget-split search climbs.
//! 2. **Split policies**: the solver's shared-price split against the
//!    proportional / access-weighted / marginal-value heuristics on the
//!    same total budget.
//! 3. **Tiered vs flat**: the same catalog and budget served through
//!    one direct source→edge tier — the relay hop's freshness cost.
//! 4. **Parallel relays**: the striped 3-relay deployment under the
//!    solver split, with a Monte-Carlo cross-check of the analytic edge
//!    PF on the chain solution.
//!
//! Pass `--smoke` for a seconds-scale run (used by CI). Telemetry lands
//! in `results/BENCH_tiers.json`.

use freshen_bench::{header, row, timed, BenchReport, BenchRun};
use freshen_core::problem::Problem;
use freshen_core::topology::Topology;
use freshen_heuristics::{split_budget, TierSplit};
use freshen_sim::{simulate_tiered, TieredSimConfig};
use freshen_solver::{TieredSolution, TieredSolver};
use freshen_workload::{parallel_relay, two_tier_chain};

/// Solve and certify one tiered instance; panic if any tier fails the
/// strict audit — "every point certified" is this experiment's contract.
fn solve_certified(
    solver: &TieredSolver,
    topo: &Topology,
    problem: &Problem,
    label: &str,
) -> TieredSolution {
    let solution = solver.solve(topo, problem).expect("tiered solve");
    let reports = solver.certify(topo, problem, &solution).expect("certify");
    for (tier, report) in reports.iter().enumerate() {
        assert!(
            report.is_clean(),
            "{label}: tier {tier} failed its KKT certificate: {:?}",
            report.violations
        );
    }
    solution
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, seed) = if smoke { (64, 7) } else { (2048, 7) };
    let phis = if smoke {
        vec![0.3, 0.5, 0.7]
    } else {
        vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
    };
    let solver = TieredSolver::default();
    let mut bench = BenchReport::new("tiers")
        .with_meta("smoke", smoke)
        .with_meta("objects", n)
        .with_meta("seed", seed);

    println!("# exp_tiers: relay freshening over {n} objects (seed {seed})");
    header(&["run", "edge_pf", "wall_s", "rounds"]);

    // ------------------------------------------------------------------
    // Leg 1: edge PF vs budget split on the two-tier chain.
    // ------------------------------------------------------------------
    let chain = two_tier_chain(n, seed).expect("chain scenario");
    let total = chain.total_budget;
    for &phi in &phis {
        let budgets = vec![0.0, phi * total, (1.0 - phi) * total];
        let topo = chain.topology.with_budgets(&budgets).expect("budgets");
        let label = format!("chain/phi={phi:.1}");
        let (solution, wall) = timed(|| solve_certified(&solver, &topo, &chain.problem, &label));
        row(&label, &[solution.edge_pf, wall, solution.rounds as f64]);
        bench.push(BenchRun {
            name: label,
            wall_seconds: wall,
            pf: Some(solution.edge_pf),
            solver_iterations: Some(solution.rounds as u64),
            events_per_sec: None,
            tail_error: None,
        });
    }

    // ------------------------------------------------------------------
    // Leg 2: solver shared-price split vs the division heuristics.
    // ------------------------------------------------------------------
    let (split_solution, split_wall) = timed(|| {
        let solution = solver
            .solve_split(&chain.topology, &chain.problem, total)
            .expect("split solve");
        let reports = solver
            .certify(&chain.topology, &chain.problem, &solution)
            .expect("certify split");
        assert!(
            reports.iter().all(|r| r.is_clean()),
            "solver split failed certification"
        );
        solution
    });
    row(
        "chain/split=solver",
        &[
            split_solution.edge_pf,
            split_wall,
            split_solution.rounds as f64,
        ],
    );
    bench.push(BenchRun {
        name: "chain/split=solver".into(),
        wall_seconds: split_wall,
        pf: Some(split_solution.edge_pf),
        solver_iterations: Some(split_solution.rounds as u64),
        events_per_sec: None,
        tail_error: None,
    });
    let mut best_heuristic_pf = f64::NEG_INFINITY;
    for rule in TierSplit::ALL {
        let budgets =
            split_budget(&chain.topology, &chain.problem, rule, total).expect("heuristic split");
        let topo = chain.topology.with_budgets(&budgets).expect("budgets");
        let label = format!("chain/split={}", rule.name());
        let (solution, wall) = timed(|| solve_certified(&solver, &topo, &chain.problem, &label));
        best_heuristic_pf = best_heuristic_pf.max(solution.edge_pf);
        row(&label, &[solution.edge_pf, wall, solution.rounds as f64]);
        bench.push(BenchRun {
            name: label,
            wall_seconds: wall,
            pf: Some(solution.edge_pf),
            solver_iterations: Some(solution.rounds as u64),
            events_per_sec: None,
            tail_error: None,
        });
    }
    bench = bench.with_meta(
        "solver_split_minus_best_heuristic",
        split_solution.edge_pf - best_heuristic_pf,
    );

    // ------------------------------------------------------------------
    // Leg 3: the relay hop's cost — same catalog and budget, one tier.
    // ------------------------------------------------------------------
    let flat_topo = Topology::builder()
        .source("origin")
        .tier("edge", total)
        .link("origin", "edge")
        .build(n)
        .expect("flat topology");
    let (flat, flat_wall) = timed(|| solve_certified(&solver, &flat_topo, &chain.problem, "flat"));
    row(
        "flat/direct",
        &[flat.edge_pf, flat_wall, flat.rounds as f64],
    );
    bench.push(BenchRun {
        name: "flat/direct".into(),
        wall_seconds: flat_wall,
        pf: Some(flat.edge_pf),
        solver_iterations: Some(flat.rounds as u64),
        events_per_sec: None,
        tail_error: None,
    });
    bench = bench.with_meta(
        "flat_minus_tiered_pf",
        flat.edge_pf - split_solution.edge_pf,
    );

    // ------------------------------------------------------------------
    // Leg 4: parallel relays + Monte-Carlo cross-check of the analytics.
    // ------------------------------------------------------------------
    let striped = parallel_relay(n, 3, seed).expect("parallel scenario");
    let (striped_solution, striped_wall) = timed(|| {
        let solution = solver
            .solve_split(&striped.topology, &striped.problem, striped.total_budget)
            .expect("striped split solve");
        let reports = solver
            .certify(&striped.topology, &striped.problem, &solution)
            .expect("certify striped");
        assert!(
            reports.iter().all(|r| r.is_clean()),
            "striped split failed certification"
        );
        solution
    });
    row(
        "parallel3/split=solver",
        &[
            striped_solution.edge_pf,
            striped_wall,
            striped_solution.rounds as f64,
        ],
    );
    bench.push(BenchRun {
        name: "parallel3/split=solver".into(),
        wall_seconds: striped_wall,
        pf: Some(striped_solution.edge_pf),
        solver_iterations: Some(striped_solution.rounds as u64),
        events_per_sec: None,
        tail_error: None,
    });

    let sim_cfg = TieredSimConfig {
        horizon: if smoke { 300.0 } else { 1_000.0 },
        warmup: 25.0,
        seed,
        replications: if smoke { 4 } else { 8 },
    };
    let report = simulate_tiered(
        &chain.topology,
        &chain.problem,
        &split_solution.schedule,
        solver.base.policy,
        &sim_cfg,
    )
    .expect("tiered simulation");
    println!(
        "# sim cross-check: measured {:.4} vs analytic {:.4} (gap {:.4})",
        report.measured_edge_pf,
        report.analytic_edge_pf,
        report.edge_gap()
    );
    bench = bench.with_meta("sim_measured_edge_pf", report.measured_edge_pf);
    bench = bench.with_meta("sim_analytic_edge_pf", report.analytic_edge_pf);

    let path = bench.write().expect("write BENCH_tiers.json");
    println!("# wrote {}", path.display());
}
