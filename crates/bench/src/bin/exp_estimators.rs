//! **Estimator race + cost frontier** (DESIGN.md §16) — the four online
//! change-rate estimators against synthetic drift, and the cost-aware
//! solver's PF/cost trade-off.
//!
//! **Leg 1 (race):** every estimator sees the *same* Bernoulli poll
//! outcomes — element `i` polled every `Δ` periods reveals
//! `I ~ Bernoulli(1 − e^{−λᵢ(t)Δ})` — under three drift regimes:
//!
//! * `stationary` — constant true rates: the convergent estimators (LLN,
//!   SA) must drive their error toward zero while constant-gain EWMA
//!   sits on its variance floor;
//! * `step` — all rates jump ×2 early in the run (10% in): after the
//!   long tail both LLN and SA must again beat EWMA's floor, the
//!   paper-motivating case (the asserted acceptance criterion);
//! * `diurnal` — rates follow a raised cosine: the tracking regime where
//!   a constant gain earns its keep (reported, not asserted).
//!
//! The score is the mean relative absolute error over the final 20% of
//! polls (`tail_error` in the telemetry).
//!
//! **Leg 2 (cost sweep):** a Table-2 scenario with a heterogeneous
//! per-poll cost column is solved under an increasing cost levy γ. The
//! binary asserts the PF/cost frontier is monotone (spend and PF both
//! non-increasing in γ) and that *every* point passes the strict
//! cost-adjusted KKT certificate — including a cost-budget-constrained
//! solve and a certified incremental-repair point.
//!
//! Pass `--smoke` for a seconds-scale run (used by CI). Telemetry lands
//! in `results/BENCH_estimators.json`.

use freshen_bench::{header, row, timed, BenchReport, BenchRun};
use freshen_core::audit::SolutionAudit;
use freshen_core::estimate::{
    EwmaRateEstimator, LlnRateEstimator, SaRateEstimator, WindowRateEstimator,
};
use freshen_core::problem::Problem;
use freshen_heuristics::adaptive::AdaptiveScheduler;
use freshen_solver::LagrangeSolver;
use freshen_workload::scenario::{Alignment, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Poll spacing for the race (periods). Chosen so the detection
/// probability stays well inside (0, 1) for every rate in the grid —
/// saturated polls carry no rate information.
const POLL_INTERVAL: f64 = 0.4;

/// The drift regimes of leg 1.
#[derive(Clone, Copy, PartialEq)]
enum Drift {
    Stationary,
    Step,
    Diurnal,
}

impl Drift {
    fn name(self) -> &'static str {
        match self {
            Drift::Stationary => "stationary",
            Drift::Step => "step",
            Drift::Diurnal => "diurnal",
        }
    }
}

struct Race {
    n: usize,
    polls: usize,
    seed: u64,
}

impl Race {
    /// Base (pre-drift) rate of element `i`: a geometric spread
    /// 0.3–1.2, kept low enough that even the doubled post-step rates
    /// don't saturate the detection probability.
    fn base_rate(&self, i: usize) -> f64 {
        0.3 * 1.414f64.powi((i % 5) as i32)
    }

    /// True rate of element `i` at the `k`-th poll.
    fn true_rate(&self, drift: Drift, i: usize, k: usize) -> f64 {
        let base = self.base_rate(i);
        match drift {
            Drift::Stationary => base,
            // The step lands 10% into the run, leaving a long tail for
            // the convergent estimators to re-converge over.
            Drift::Step => {
                if k >= self.polls / 10 {
                    2.0 * base
                } else {
                    base
                }
            }
            // Four full cycles per run, ±60% swing.
            Drift::Diurnal => {
                let phase = 8.0 * std::f64::consts::PI * k as f64 / self.polls as f64;
                base * (1.0 + 0.6 * phase.sin())
            }
        }
    }

    /// Race all four estimators on one drift regime. Returns the four
    /// tail errors in catalogue order (ewma, window, lln, sa).
    fn run(&self, drift: Drift) -> [f64; 4] {
        let n = self.n;
        let prior = 1.0;
        let mut ewma = EwmaRateEstimator::new(n, 0.1, prior).expect("ewma builds");
        let mut window = WindowRateEstimator::new(n, 8).expect("window builds");
        let mut lln = LlnRateEstimator::new(n).expect("lln builds");
        // Decay 0.6 sits at the fast end of the Robbins–Monro range
        // (0.5, 1]: the gain shrinks slowly enough to absorb the early
        // step change yet still drives the variance to zero.
        let mut sa = SaRateEstimator::new(n, 0.5, 0.6, prior).expect("sa builds");

        let mut rng = StdRng::seed_from_u64(self.seed ^ drift.name().len() as u64);
        let tail_start = self.polls - self.polls / 5;
        let mut err = [0.0f64; 4];
        let mut samples = 0u64;
        for k in 0..self.polls {
            for i in 0..n {
                let lambda = self.true_rate(drift, i, k);
                let q = 1.0 - (-lambda * POLL_INTERVAL).exp();
                let changed = rng.gen::<f64>() < q;
                ewma.observe(i, POLL_INTERVAL, changed).expect("observe");
                window.observe(i, POLL_INTERVAL, changed).expect("observe");
                lln.observe(i, POLL_INTERVAL, changed).expect("observe");
                sa.observe(i, POLL_INTERVAL, changed).expect("observe");
            }
            if k >= tail_start {
                let estimates = [
                    ewma.rates(prior),
                    window.rates(prior),
                    lln.rates(prior),
                    sa.rates(prior),
                ];
                for (slot, rates) in err.iter_mut().zip(&estimates) {
                    for (i, &est) in rates.iter().enumerate() {
                        let truth = self.true_rate(drift, i, k);
                        *slot += (est - truth).abs() / truth;
                    }
                }
                samples += n as u64;
            }
        }
        err.map(|e| e / samples as f64)
    }
}

/// The cost-sweep problem: a Table-2 scenario with a heterogeneous
/// per-poll cost column grafted on.
fn costed_problem(seed: u64) -> Problem {
    let base = Scenario::table2(1.0, Alignment::ShuffledChange, seed)
        .problem()
        .expect("scenario problem builds");
    let costs = (0..base.len())
        .map(|i| 0.5 + (i % 7) as f64 * 0.4)
        .collect();
    Problem::builder()
        .change_rates(base.change_rates().to_vec())
        .access_probs(base.access_probs().to_vec())
        .sizes(base.sizes().to_vec())
        .costs(costs)
        .bandwidth(base.bandwidth())
        .build()
        .expect("costed problem builds")
}

fn spend(problem: &Problem, frequencies: &[f64]) -> f64 {
    let costs = problem.poll_costs().expect("cost column present");
    frequencies.iter().zip(costs).map(|(&f, &c)| f * c).sum()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let race = if smoke {
        Race {
            n: 24,
            polls: 600,
            seed: 7,
        }
    } else {
        Race {
            n: 128,
            polls: 4000,
            seed: 7,
        }
    };

    let mut bench = BenchReport::new("estimators")
        .with_meta("smoke", smoke)
        .with_meta("elements", race.n)
        .with_meta("polls", race.polls)
        .with_meta("poll_interval", POLL_INTERVAL)
        .with_meta("seed", race.seed);

    println!(
        "# Estimator race: {} elements, {} polls each, tail = final 20%",
        race.n, race.polls
    );
    header(&["run", "tail_error"]);
    let mut step_errors = [0.0f64; 4];
    for drift in [Drift::Stationary, Drift::Step, Drift::Diurnal] {
        let (errors, wall) = timed(|| race.run(drift));
        if drift == Drift::Step {
            step_errors = errors;
        }
        for (label, err) in ["ewma", "window", "lln", "sa"].iter().zip(errors) {
            let name = format!("{}/{}", drift.name(), label);
            row(&name, &[err]);
            bench.push(BenchRun {
                name,
                wall_seconds: wall / 4.0,
                pf: None,
                solver_iterations: None,
                events_per_sec: None,
                tail_error: Some(err),
            });
        }
    }
    // The acceptance criterion: after an early step change, both
    // convergent estimators must beat constant-gain EWMA's variance
    // floor over the long tail.
    let [ewma_err, _, lln_err, sa_err] = step_errors;
    assert!(
        lln_err < ewma_err,
        "LLN tail error {lln_err:.4} must beat EWMA {ewma_err:.4} on the step leg"
    );
    assert!(
        sa_err < ewma_err,
        "SA tail error {sa_err:.4} must beat EWMA {ewma_err:.4} on the step leg"
    );
    println!(
        "# step leg: LLN {:.4} and SA {:.4} both beat EWMA {:.4}",
        lln_err, sa_err, ewma_err
    );

    // ---- Leg 2: the PF/cost frontier under an increasing levy. ----
    let problem = costed_problem(race.seed);
    let audit = SolutionAudit::default();
    let policy = LagrangeSolver::default().policy;
    println!(
        "# Cost sweep: {} objects, strict certificates armed",
        problem.len()
    );
    header(&["run", "pf", "spend"]);

    let gammas = [0.0, 0.002, 0.005, 0.01, 0.02, 0.05];
    let mut frontier: Vec<(f64, f64)> = Vec::new();
    for &gamma in &gammas {
        let solver = LagrangeSolver::default().with_cost_weight(gamma);
        let (solution, wall) = timed(|| solver.solve(&problem).expect("cost-aware solve"));
        let report = audit
            .check_with_cost(&problem, &solution, policy, gamma)
            .expect("audit runs");
        assert!(
            report.is_clean(),
            "gamma={gamma}: strict cost-adjusted certificate failed: {report:?}"
        );
        let pf = solution.perceived_freshness;
        let used = spend(&problem, &solution.frequencies);
        let name = format!("cost/gamma={gamma}");
        row(&name, &[pf, used]);
        bench.push(BenchRun {
            name,
            wall_seconds: wall,
            pf: Some(pf),
            solver_iterations: Some(solution.iterations as u64),
            events_per_sec: None,
            tail_error: None,
        });
        frontier.push((pf, used));
    }
    for pair in frontier.windows(2) {
        let ((pf_lo, spend_lo), (pf_hi, spend_hi)) = (pair[0], pair[1]);
        assert!(
            pf_hi <= pf_lo + 1e-12 && spend_hi <= spend_lo + 1e-9,
            "frontier must be monotone: ({pf_lo}, {spend_lo}) -> ({pf_hi}, {spend_hi})"
        );
    }
    println!("# frontier monotone over {} levies", gammas.len());

    // Cost-budget-constrained point: cap the spend at 60% of the
    // unconstrained schedule's and let the solver calibrate the levy.
    let cap = 0.6 * frontier[0].1;
    let solver = LagrangeSolver::default();
    let (capped, wall) = timed(|| {
        solver
            .solve_cost_budget(&problem, cap)
            .expect("cost-budget solve")
    });
    let gamma_star = capped.cost_multiplier.unwrap_or(0.0);
    let capped_spend = spend(&problem, &capped.frequencies);
    assert!(
        capped_spend <= cap * (1.0 + 1e-9),
        "budgeted spend {capped_spend} exceeds cap {cap}"
    );
    let report = audit
        .check_with_cost(&problem, &capped, policy, gamma_star)
        .expect("audit runs");
    assert!(
        report.is_clean(),
        "cost-budget certificate failed: {report:?}"
    );
    row("cost/budgeted", &[capped.perceived_freshness, capped_spend]);
    bench.push(BenchRun {
        name: "cost/budgeted".into(),
        wall_seconds: wall,
        pf: Some(capped.perceived_freshness),
        solver_iterations: Some(capped.iterations as u64),
        events_per_sec: None,
        tail_error: None,
    });
    println!(
        "# budgeted: spend {capped_spend:.2} <= cap {cap:.2} (calibrated levy {gamma_star:.5})"
    );

    // Repair-path point: a certified incremental repair under a levy.
    // The scheduler's internal certificate is the cost-adjusted one, so
    // a counted repair here *is* a certified cost-aware repair. Repair
    // needs the bandwidth budget to bind (μ > 0), so this leg tightens
    // the budget and keeps the levy small relative to μ*.
    let gamma = 1e-4;
    let problem = Problem::builder()
        .change_rates(problem.change_rates().to_vec())
        .access_probs(problem.access_probs().to_vec())
        .sizes(problem.sizes().to_vec())
        .costs(problem.poll_costs().expect("cost column").to_vec())
        .bandwidth(problem.bandwidth() / 4.0)
        .build()
        .expect("tightened problem builds");
    let mut scheduler = AdaptiveScheduler::new_costed(&problem, 1e-9, gamma)
        .expect("scheduler builds")
        .with_repair_fraction(0.25);
    let mut rates = problem.change_rates().to_vec();
    for r in rates.iter_mut().take(problem.len() / 10) {
        *r *= 1.5;
    }
    let perturbed = Problem::builder()
        .change_rates(rates)
        .access_probs(problem.access_probs().to_vec())
        .sizes(problem.sizes().to_vec())
        .costs(problem.poll_costs().expect("cost column").to_vec())
        .bandwidth(problem.bandwidth())
        .build()
        .expect("perturbed problem builds");
    let (_, wall) = timed(|| scheduler.resolve(&perturbed).expect("resolve"));
    assert!(
        scheduler.repairs() == 1 && scheduler.repair_fallbacks() == 0,
        "local perturbation must take the certified repair path (repairs={}, fallbacks={})",
        scheduler.repairs(),
        scheduler.repair_fallbacks()
    );
    let repaired = scheduler.schedule().clone();
    row(
        "cost/repair",
        &[
            repaired.perceived_freshness,
            spend(&perturbed, &repaired.frequencies),
        ],
    );
    bench.push(BenchRun {
        name: "cost/repair".into(),
        wall_seconds: wall,
        pf: Some(repaired.perceived_freshness),
        solver_iterations: Some(repaired.iterations as u64),
        events_per_sec: None,
        tail_error: None,
    });
    println!("# repair under levy {gamma}: certified incremental repair, no fallback");

    match bench.write() {
        Ok(path) => println!("# telemetry: {}", path.display()),
        Err(e) => eprintln!("# telemetry write failed: {e}"),
    }
}
