//! **Sensitivity study** — the paper (§2.2.2) defers its parameter
//! sensitivity analysis to the companion technical report \[2\]; this binary
//! reconstructs it for the two knobs that matter:
//!
//! * `UpdateStdDev` (σ of the change-rate Gamma): more heterogeneous
//!   volatility widens the PF-vs-GF gap, because a profile-aware scheduler
//!   can exploit the spread;
//! * the **bandwidth ratio** `B / U` (syncs per update): both techniques
//!   converge to 1 as bandwidth saturates, and the PF advantage peaks in
//!   the starved middle regime.

use freshen_bench::{header, parallel_map, row};
use freshen_solver::{solve_general_freshness, solve_perceived_freshness};
use freshen_workload::scenario::{Alignment, Scenario};

fn main() {
    let seed = 42;

    println!("# Sensitivity (a): update std-dev sweep (theta = 1.0, shuffled)");
    header(&["update_std_dev", "PF_TECHNIQUE", "GF_TECHNIQUE"]);
    let sigmas = [0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0];
    let rows = parallel_map(&sigmas, |&sigma| {
        let problem = Scenario::builder()
            .num_objects(500)
            .updates_per_period(1000.0)
            .syncs_per_period(250.0)
            .zipf_theta(1.0)
            .update_std_dev(sigma)
            .alignment(Alignment::ShuffledChange)
            .seed(seed)
            .build()
            .expect("scenario builds")
            .problem()
            .expect("problem materializes");
        let pf = solve_perceived_freshness(&problem)
            .expect("PF solve")
            .perceived_freshness;
        let gf = solve_general_freshness(&problem)
            .expect("GF solve")
            .perceived_freshness;
        (sigma, pf, gf)
    });
    for (sigma, pf, gf) in rows {
        row(&format!("{sigma:.2}"), &[pf, gf]);
    }

    println!();
    println!("# Sensitivity (b): bandwidth-ratio sweep (theta = 1.0, shuffled, sigma = 1)");
    header(&["syncs_per_update", "PF_TECHNIQUE", "GF_TECHNIQUE"]);
    let ratios = [0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0];
    let rows = parallel_map(&ratios, |&ratio| {
        let problem = Scenario::builder()
            .num_objects(500)
            .updates_per_period(1000.0)
            .syncs_per_period(1000.0 * ratio)
            .zipf_theta(1.0)
            .update_std_dev(1.0)
            .alignment(Alignment::ShuffledChange)
            .seed(seed)
            .build()
            .expect("scenario builds")
            .problem()
            .expect("problem materializes");
        let pf = solve_perceived_freshness(&problem)
            .expect("PF solve")
            .perceived_freshness;
        let gf = solve_general_freshness(&problem)
            .expect("GF solve")
            .perceived_freshness;
        (ratio, pf, gf)
    });
    for (ratio, pf, gf) in rows {
        row(&format!("{ratio:.2}"), &[pf, gf]);
    }
}
