//! **Figure 10 (a/b)** — optimal distribution of sync *frequency* vs sync
//! *bandwidth* across 500 objects when sizes are uniform vs Pareto(1.1)
//! (access uniform, change rate aligned descending by object id, size
//! aligned with change — object 0 changes fastest and is largest).
//!
//! Paper findings reproduced here:
//! * all sync resources go to the objects with the *lowest* change rates
//!   (the tail of the object axis) — hopeless volatiles are starved;
//! * under Pareto sizes, small objects take *more syncs* for *less
//!   bandwidth*: the total sync count is much larger for the same budget;
//! * §5.3's headline: the schedule computed while *ignoring* sizes
//!   (uniform assumption), replayed in the sized world, wastes bandwidth
//!   on large objects — perceived freshness 0.312 vs 0.586 in the paper.

use freshen_bench::{header, row};
use freshen_solver::LagrangeSolver;
use freshen_workload::scenario::{Alignment, Scenario, SizeAlignment, SizeDist};

fn main() {
    let n = 500;
    let base = Scenario::builder()
        .num_objects(n)
        .updates_per_period(1000.0)
        .syncs_per_period(250.0)
        .zipf_theta(0.0) // uniform access
        .update_std_dev(1.0)
        .alignment(Alignment::Aligned) // object 0: highest change rate
        .seed(42);

    let uniform = base
        .clone()
        .build()
        .expect("uniform-size scenario builds")
        .problem()
        .expect("uniform problem");
    let pareto = base
        .size_dist(SizeDist::Pareto { shape: 1.1 })
        .size_alignment(SizeAlignment::AlignedWithChange) // object 0 largest
        .build()
        .expect("pareto scenario builds")
        .problem()
        .expect("pareto problem");

    let solver = LagrangeSolver::default();
    let sol_uniform = solver.solve(&uniform).expect("uniform solve");
    let sol_pareto = solver.solve(&pareto).expect("pareto solve");

    println!("# Figure 10: per-object sync frequency and bandwidth (N = {n})");
    header(&[
        "object",
        "freq_uniform",
        "freq_pareto",
        "bw_uniform",
        "bw_pareto",
        "size_pareto",
    ]);
    for i in 0..n {
        let fu = sol_uniform.frequencies[i];
        let fp = sol_pareto.frequencies[i];
        let s = pareto.sizes()[i];
        row(&i.to_string(), &[fu, fp, fu * 1.0, fp * s, s]);
    }

    let total_syncs_uniform: f64 = sol_uniform.frequencies.iter().sum();
    let total_syncs_pareto: f64 = sol_pareto.frequencies.iter().sum();
    println!("# total syncs: uniform {total_syncs_uniform:.1}, pareto {total_syncs_pareto:.1} (same bandwidth)");

    // §5.3 headline: size-blind schedule replayed in the sized world.
    let blind = solver
        .solve(&pareto.with_uniform_sizes())
        .expect("size-blind solve");
    let used = pareto.bandwidth_used(&blind.frequencies);
    // As planned (the paper's comparison): cut if over budget, waste the
    // leftover if under.
    let cut = (pareto.bandwidth() / used).min(1.0);
    let planned: Vec<f64> = blind.frequencies.iter().map(|f| f * cut).collect();
    let planned_pf = pareto.perceived_freshness(&planned);
    // Generous variant: rescale the blind plan to exhaust the budget.
    let scale = pareto.bandwidth() / used;
    let rescaled: Vec<f64> = blind.frequencies.iter().map(|f| f * scale).collect();
    let rescaled_pf = pareto.perceived_freshness(&rescaled);
    println!(
        "# perceived freshness on Pareto-sized world: size-aware {:.3} vs size-blind {:.3} as planned / {:.3} rescaled (paper: 0.586 vs 0.312)",
        sol_pareto.perceived_freshness, planned_pf, rescaled_pf
    );
}
