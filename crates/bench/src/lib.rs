//! # freshen-bench
//!
//! The experiment harness. One binary per table/figure of the paper (see
//! DESIGN.md §6 for the index), each printing the same rows/series the
//! paper reports, plus Criterion micro-benchmarks of the hot paths.
//!
//! Run an experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p freshen-bench --bin exp_table1
//! cargo run --release -p freshen-bench --bin exp_fig7    # big case
//! ```
//!
//! Big-case binaries honour `FRESHEN_N` (object count, default 500 000 as
//! in the paper's Table 3) so laptops can smoke-test with smaller mirrors.
//!
//! This crate's library holds the shared harness utilities: row printing,
//! timing, the paper's sweep grids, and a parallel sweep helper.

#![warn(missing_docs)]

use std::time::Instant;

use freshen_core::problem::Problem;
use freshen_heuristics::{HeuristicConfig, HeuristicScheduler};

/// θ grid of the paper's skew sweeps (Table 2: 0.0–1.6).
pub const THETA_GRID: [f64; 9] = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6];

/// Partition-count grid for the 500-object ideal experiments (Figure 5).
pub const PARTITIONS_SMALL: [usize; 11] = [5, 10, 25, 50, 100, 150, 200, 250, 300, 400, 500];

/// Partition-count grid for the big case (Figures 7–8: 20–200).
pub const PARTITIONS_BIG: [usize; 10] = [20, 40, 60, 80, 100, 120, 140, 160, 180, 200];

/// k-Means iteration grid (Figure 8).
pub const KMEANS_ITERS: [usize; 5] = [0, 1, 3, 5, 10];

/// Read the big-case object count from `FRESHEN_N` (default: the paper's
/// 500 000).
pub fn big_case_n() -> usize {
    std::env::var("FRESHEN_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500_000)
}

/// Print a CSV header line.
pub fn header(columns: &[&str]) {
    println!("{}", columns.join(","));
}

/// Print a CSV data row: a label followed by numeric cells.
pub fn row(label: &str, cells: &[f64]) {
    let mut line = String::from(label);
    for c in cells {
        line.push(',');
        line.push_str(&format!("{c:.6}"));
    }
    println!("{line}");
}

/// Time a closure, returning its result and elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Run the heuristic pipeline with the given knobs and return the achieved
/// perceived freshness (panics on configuration errors — experiment
/// binaries fail fast).
pub fn heuristic_pf(problem: &Problem, config: HeuristicConfig) -> f64 {
    HeuristicScheduler::new(config)
        .expect("valid heuristic config")
        .solve(problem)
        .expect("heuristic solve succeeds")
        .solution
        .perceived_freshness
}

/// Map `f` over `items` in parallel with scoped threads, preserving input
/// order in the output. Used by the sweep binaries to use all cores.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let out_slots = parking_lot::Mutex::new(&mut out);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                out_slots.lock()[i] = Some(r);
            });
        }
    })
    .expect("worker thread panicked");
    out.into_iter().map(|o| o.expect("slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let items: Vec<usize> = vec![];
        let out = parallel_map(&items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn big_case_n_default() {
        // Can't set env vars safely in parallel tests; just check default
        // path when unset or the parse fallback.
        assert!(big_case_n() >= 1);
    }
}
