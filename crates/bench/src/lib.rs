//! # freshen-bench
//!
//! The experiment harness. One binary per table/figure of the paper (see
//! DESIGN.md §6 for the index), each printing the same rows/series the
//! paper reports, plus Criterion micro-benchmarks of the hot paths.
//!
//! Run an experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p freshen-bench --bin exp_table1
//! cargo run --release -p freshen-bench --bin exp_fig7    # big case
//! ```
//!
//! Big-case binaries honour `FRESHEN_N` (object count, default 500 000 as
//! in the paper's Table 3) so laptops can smoke-test with smaller mirrors.
//!
//! This crate's library holds the shared harness utilities: row printing,
//! timing, the paper's sweep grids, and a parallel sweep helper.

#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::time::Instant;

use freshen_core::problem::Problem;
use freshen_heuristics::{HeuristicConfig, HeuristicScheduler};
use freshen_obs::Recorder;
use serde::{Deserialize, Serialize};

/// θ grid of the paper's skew sweeps (Table 2: 0.0–1.6).
pub const THETA_GRID: [f64; 9] = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6];

/// Partition-count grid for the 500-object ideal experiments (Figure 5).
pub const PARTITIONS_SMALL: [usize; 11] = [5, 10, 25, 50, 100, 150, 200, 250, 300, 400, 500];

/// Partition-count grid for the big case (Figures 7–8: 20–200).
pub const PARTITIONS_BIG: [usize; 10] = [20, 40, 60, 80, 100, 120, 140, 160, 180, 200];

/// k-Means iteration grid (Figure 8).
pub const KMEANS_ITERS: [usize; 5] = [0, 1, 3, 5, 10];

/// Read the big-case object count from `FRESHEN_N` (default: the paper's
/// 500 000).
pub fn big_case_n() -> usize {
    std::env::var("FRESHEN_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500_000)
}

/// Print a CSV header line.
pub fn header(columns: &[&str]) {
    println!("{}", columns.join(","));
}

/// Print a CSV data row: a label followed by numeric cells.
pub fn row(label: &str, cells: &[f64]) {
    let mut line = String::from(label);
    for c in cells {
        line.push(',');
        line.push_str(&format!("{c:.6}"));
    }
    println!("{line}");
}

/// Time a closure, returning its result and elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Run the heuristic pipeline with the given knobs and return the achieved
/// perceived freshness (panics on configuration errors — experiment
/// binaries fail fast).
pub fn heuristic_pf(problem: &Problem, config: HeuristicConfig) -> f64 {
    HeuristicScheduler::new(config)
        .expect("valid heuristic config")
        .solve(problem)
        .expect("heuristic solve succeeds")
        .solution
        .perceived_freshness
}

/// Like [`heuristic_pf`], but also capture a [`BenchRun`] telemetry record
/// (wall time, achieved PF, representative-solve iteration count) through
/// an enabled [`Recorder`].
pub fn heuristic_run(name: &str, problem: &Problem, config: HeuristicConfig) -> (f64, BenchRun) {
    let recorder = Recorder::enabled();
    let (pf, wall) = timed(|| {
        HeuristicScheduler::new(config)
            .expect("valid heuristic config")
            .with_recorder(recorder.clone())
            .solve(problem)
            .expect("heuristic solve succeeds")
            .solution
            .perceived_freshness
    });
    (pf, BenchRun::from_recorder(name, wall, &recorder))
}

/// Telemetry for one measured run inside an experiment binary.
///
/// Optional fields are `None` when the quantity does not apply (a pure
/// solver run has no event throughput; a simulator run driven by a fixed
/// schedule has no solver iterations). The schema is the contract used by
/// perf-trajectory diffs across commits — extend it, never repurpose
/// fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRun {
    /// Run label, e.g. `"P1"` or `"shuffle-change/k=50"`.
    pub name: String,
    /// Wall-clock seconds spent producing this run's result.
    pub wall_seconds: f64,
    /// Perceived freshness achieved, when the run produces one.
    pub pf: Option<f64>,
    /// Total solver iterations (outer iterations for the Lagrange solver).
    pub solver_iterations: Option<u64>,
    /// Simulator event throughput, when the run drives the simulator.
    pub events_per_sec: Option<f64>,
    /// Steady-state estimation error (mean relative absolute error over
    /// the run's tail window), when the run races a change-rate
    /// estimator (`exp_estimators`).
    #[serde(default)]
    pub tail_error: Option<f64>,
}

impl BenchRun {
    /// Build a run record from an enabled [`Recorder`], pulling the
    /// conventional metric names published by the instrumented crates
    /// (`pf`, `solver.outer_iters`, `events_per_sec`).
    pub fn from_recorder(name: impl Into<String>, wall_seconds: f64, recorder: &Recorder) -> Self {
        BenchRun {
            name: name.into(),
            wall_seconds,
            pf: recorder
                .gauge_value("pf")
                .or_else(|| recorder.gauge_value("heuristic.pf")),
            solver_iterations: recorder.counter_value("solver.outer_iters"),
            events_per_sec: recorder.gauge_value("events_per_sec"),
            tail_error: None,
        }
    }
}

/// Schema version stamped into every `BENCH_*.json` file. Bump whenever
/// the report layout changes shape (new/renamed fields), so downstream
/// perf-trajectory tooling can dispatch on it instead of sniffing keys.
///
/// * v1 — implicit, pre-stamp files: `{experiment, runs}`.
/// * v2 — added `schema_version` and the `meta` run-metadata block.
/// * v3 — added the per-run `tail_error` field (estimator races).
pub const BENCH_SCHEMA_VERSION: u32 = 3;

/// Machine-readable result file for one experiment binary, written to
/// `results/BENCH_<experiment>.json` next to the experiment's CSV output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report layout version — see [`BENCH_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Experiment slug, e.g. `"table1"` — names the output file.
    pub experiment: String,
    /// Run metadata (`key`, `value`) pairs in insertion order: the knobs
    /// this invocation ran with (object count, seed, epochs, …).
    /// Deliberately excludes wall-clock timestamps and host names so
    /// committed reports stay byte-stable across reruns.
    pub meta: Vec<(String, String)>,
    /// One record per measured run, in execution order.
    pub runs: Vec<BenchRun>,
}

impl BenchReport {
    /// Start an empty report for `experiment`, stamped with the current
    /// schema version and the crate version it was produced by.
    pub fn new(experiment: impl Into<String>) -> Self {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            experiment: experiment.into(),
            meta: vec![(
                "package_version".to_string(),
                env!("CARGO_PKG_VERSION").to_string(),
            )],
            runs: Vec::new(),
        }
    }

    /// Record one run-metadata pair (builder style), e.g. the object
    /// count or seed the experiment ran with.
    #[must_use]
    pub fn with_meta(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.set_meta(key, value);
        self
    }

    /// Record one run-metadata pair, replacing any earlier value under
    /// the same key.
    pub fn set_meta(&mut self, key: impl Into<String>, value: impl ToString) {
        let key = key.into();
        let value = value.to_string();
        match self.meta.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => self.meta.push((key, value)),
        }
    }

    /// Append one run record.
    pub fn push(&mut self, run: BenchRun) {
        self.runs.push(run);
    }

    /// Render the report as pretty-printed JSON, matching the layout
    /// `serde_json::to_string_pretty` produces for the derived `Serialize`
    /// impl. Rendering field-by-field keeps the byte layout deterministic
    /// regardless of the JSON backend in use, so committed `BENCH_*.json`
    /// files diff cleanly across commits.
    pub fn to_json(&self) -> String {
        fn opt_f64(v: Option<f64>) -> String {
            v.map_or_else(|| "null".into(), fmt_f64)
        }
        fn fmt_f64(v: f64) -> String {
            if v.is_finite() {
                let s = format!("{v}");
                // serde_json always renders floats with a decimal point.
                if s.contains('.') || s.contains('e') || s.contains("inf") {
                    s
                } else {
                    format!("{s}.0")
                }
            } else {
                "null".into()
            }
        }
        fn escape(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str(&format!(
            "  \"experiment\": \"{}\",\n",
            escape(&self.experiment)
        ));
        out.push_str("  \"meta\": {");
        for (i, (key, value)) in self.meta.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    \"{}\": \"{}\"", escape(key), escape(value)));
        }
        if self.meta.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str("\n  },\n");
        }
        out.push_str("  \"runs\": [");
        for (i, run) in self.runs.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", escape(&run.name)));
            out.push_str(&format!(
                "      \"wall_seconds\": {},\n",
                fmt_f64(run.wall_seconds)
            ));
            out.push_str(&format!("      \"pf\": {},\n", opt_f64(run.pf)));
            out.push_str(&format!(
                "      \"solver_iterations\": {},\n",
                run.solver_iterations
                    .map_or_else(|| "null".to_string(), |v| v.to_string())
            ));
            out.push_str(&format!(
                "      \"events_per_sec\": {},\n",
                opt_f64(run.events_per_sec)
            ));
            out.push_str(&format!(
                "      \"tail_error\": {}\n",
                opt_f64(run.tail_error)
            ));
            out.push_str("    }");
        }
        if self.runs.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push('}');
        out
    }

    /// Write the report to `<dir>/BENCH_<experiment>.json`, creating the
    /// directory when missing. Returns the path written.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.experiment));
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }

    /// Write the report to the conventional `results/` directory.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        self.write_to("results")
    }
}

/// Map `f` over `items` in parallel with scoped threads, preserving input
/// order in the output. Used by the sweep binaries to use all cores.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let out_slots = parking_lot::Mutex::new(&mut out);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                out_slots.lock()[i] = Some(r);
            });
        }
    })
    .expect("worker thread panicked");
    out.into_iter().map(|o| o.expect("slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let items: Vec<usize> = vec![];
        let out = parallel_map(&items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn bench_report_json_layout_is_stable() {
        let mut report = BenchReport::new("unit");
        report.push(BenchRun {
            name: "run \"a\"".into(),
            wall_seconds: 0.5,
            pf: Some(0.875),
            solver_iterations: Some(12),
            events_per_sec: None,
            tail_error: Some(0.125),
        });
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema_version\": 3,\n  \"experiment\": \"unit\","));
        assert!(json.contains("\"package_version\": "));
        assert!(json.contains("\"name\": \"run \\\"a\\\"\""));
        assert!(json.contains("\"wall_seconds\": 0.5"));
        assert!(json.contains("\"pf\": 0.875"));
        assert!(json.contains("\"solver_iterations\": 12"));
        assert!(json.contains("\"events_per_sec\": null"));
        assert!(json.contains("\"tail_error\": 0.125"));
        // Integral floats keep a decimal point, as serde_json renders them.
        report.runs[0].wall_seconds = 2.0;
        assert!(report.to_json().contains("\"wall_seconds\": 2.0"));
    }

    #[test]
    fn bench_report_empty_runs() {
        let report = BenchReport::new("empty");
        let json = report.to_json();
        assert!(json.contains("\"runs\": []"));
    }

    #[test]
    fn bench_report_meta_replaces_and_orders() {
        let mut report = BenchReport::new("meta")
            .with_meta("objects", 500)
            .with_meta("seed", 7);
        report.set_meta("seed", 9);
        let json = report.to_json();
        assert_eq!(report.schema_version, BENCH_SCHEMA_VERSION);
        assert!(json.contains("\"objects\": \"500\""));
        assert!(json.contains("\"seed\": \"9\""));
        assert!(!json.contains("\"seed\": \"7\""));
        let objects = json.find("\"objects\"").unwrap();
        let seed = json.find("\"seed\"").unwrap();
        assert!(objects < seed, "insertion order preserved");
    }

    #[test]
    fn bench_report_writes_conventional_filename() {
        let dir = std::env::temp_dir().join("freshen_bench_report_test");
        let report = BenchReport::new("smoke");
        let path = report.write_to(&dir).expect("write succeeds");
        assert!(path.ends_with("BENCH_smoke.json"));
        let body = std::fs::read_to_string(&path).expect("readable");
        assert!(body.contains("\"experiment\": \"smoke\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn heuristic_run_captures_telemetry() {
        let problem = Problem::builder()
            .change_rates(vec![1.0, 2.0, 3.0, 4.0])
            .access_probs(vec![0.25; 4])
            .bandwidth(4.0)
            .build()
            .unwrap();
        let config = HeuristicConfig {
            num_partitions: 2,
            ..Default::default()
        };
        let (pf, run) = heuristic_run("smoke", &problem, config.clone());
        assert_eq!(pf, heuristic_pf(&problem, config));
        assert_eq!(run.pf, Some(pf));
        assert!(run.wall_seconds >= 0.0);
        assert!(run.solver_iterations.unwrap() > 0);
        assert_eq!(run.events_per_sec, None);
    }

    #[test]
    fn big_case_n_default() {
        // Can't set env vars safely in parallel tests; just check default
        // path when unset or the parse fallback.
        assert!(big_case_n() >= 1);
    }
}
