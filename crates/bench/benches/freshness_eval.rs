//! Throughput of the analytic freshness evaluator: one `Σ pᵢ·F̄(λᵢ, fᵢ)`
//! pass over a large mirror (the inner loop of every experiment sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freshen_core::freshness::perceived_freshness;
use freshen_workload::scenario::Scenario;

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("freshness_eval");
    for n in [10_000usize, 100_000, 1_000_000] {
        let problem = Scenario::table3_scaled(n, 7).problem().unwrap();
        let freqs: Vec<f64> = (0..n).map(|i| 0.5 + (i % 5) as f64 * 0.1).collect();
        group.bench_with_input(BenchmarkId::new("perceived_freshness", n), &n, |b, _| {
            b.iter(|| perceived_freshness(problem.access_probs(), problem.change_rates(), &freqs));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
