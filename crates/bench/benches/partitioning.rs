//! Cost of building the sorted partitions for each criterion (§3.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freshen_heuristics::partition::{PartitionCriterion, Partitioning};
use freshen_workload::scenario::Scenario;

fn bench_partitioning(c: &mut Criterion) {
    let problem = Scenario::table3_scaled(100_000, 7).problem().unwrap();
    let mut group = c.benchmark_group("partitioning_100k");
    group.sample_size(20);
    for criterion in PartitionCriterion::CORE {
        group.bench_with_input(
            BenchmarkId::from_parameter(criterion.name()),
            &criterion,
            |b, &crit| {
                b.iter(|| Partitioning::by_criterion(&problem, crit, 100, 1.0).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
