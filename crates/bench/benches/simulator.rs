//! Event throughput of the discrete-event simulator (Figure 4's engine):
//! a full update/sync/access run over a 500-object mirror.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freshen_sim::{SimConfig, Simulation};
use freshen_solver::solve_perceived_freshness;
use freshen_workload::scenario::{Alignment, Scenario};

fn bench_simulator(c: &mut Criterion) {
    let problem = Scenario::table2(1.0, Alignment::ShuffledChange, 7)
        .problem()
        .unwrap();
    let freqs = solve_perceived_freshness(&problem).unwrap().frequencies;
    let mut group = c.benchmark_group("simulator_500_objects");
    group.sample_size(10);
    for periods in [5.0f64, 20.0] {
        let config = SimConfig {
            periods,
            warmup_periods: 1.0,
            accesses_per_period: 1000.0,
            seed: 7,
        };
        group.bench_with_input(
            BenchmarkId::new("run_periods", periods as u64),
            &config,
            |b, cfg| {
                let sim = Simulation::new(&problem, &freqs, *cfg).unwrap();
                b.iter(|| sim.run());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
