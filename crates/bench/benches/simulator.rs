//! Event throughput of the discrete-event simulator (Figure 4's engine):
//! a full update/sync/access run over a 500-object mirror.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freshen_obs::Recorder;
use freshen_sim::{SimConfig, Simulation};
use freshen_solver::solve_perceived_freshness;
use freshen_workload::scenario::{Alignment, Scenario};

fn bench_simulator(c: &mut Criterion) {
    let problem = Scenario::table2(1.0, Alignment::ShuffledChange, 7)
        .problem()
        .unwrap();
    let freqs = solve_perceived_freshness(&problem).unwrap().frequencies;
    let mut group = c.benchmark_group("simulator_500_objects");
    group.sample_size(10);
    for periods in [5.0f64, 20.0] {
        let config = SimConfig {
            periods,
            warmup_periods: 1.0,
            accesses_per_period: 1000.0,
            seed: 7,
        };
        group.bench_with_input(
            BenchmarkId::new("run_periods", periods as u64),
            &config,
            |b, cfg| {
                let sim = Simulation::new(&problem, &freqs, *cfg).unwrap();
                b.iter(|| sim.run());
            },
        );
    }
    group.finish();
}

/// Cost of the observability layer on the simulator hot loop.
///
/// `noop_recorder` must stay within ~5% of `baseline`: a disabled
/// [`Recorder`] hands out no-op instruments whose per-event cost is a
/// single branch. `enabled_recorder` shows the full recording cost for
/// contrast (atomics, span buffers, sampled journal entries).
fn bench_obs_overhead(c: &mut Criterion) {
    let problem = Scenario::table2(1.0, Alignment::ShuffledChange, 7)
        .problem()
        .unwrap();
    let freqs = solve_perceived_freshness(&problem).unwrap().frequencies;
    let config = SimConfig {
        periods: 10.0,
        warmup_periods: 1.0,
        accesses_per_period: 1000.0,
        seed: 7,
    };
    let mut group = c.benchmark_group("obs_overhead_500_objects");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("run", "baseline"), |b| {
        let sim = Simulation::new(&problem, &freqs, config).unwrap();
        b.iter(|| sim.run());
    });
    group.bench_function(BenchmarkId::new("run", "noop_recorder"), |b| {
        let sim = Simulation::new(&problem, &freqs, config)
            .unwrap()
            .with_recorder(Recorder::disabled());
        b.iter(|| sim.run());
    });
    group.bench_function(BenchmarkId::new("run", "enabled_recorder"), |b| {
        let sim = Simulation::new(&problem, &freqs, config)
            .unwrap()
            .with_recorder(Recorder::enabled());
        b.iter(|| sim.run());
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_obs_overhead);
criterion_main!(benches);
