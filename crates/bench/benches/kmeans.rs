//! Per-iteration cost of the k-Means refinement (§4.1.3): the Figure 9
//! trade-off is iterations × (N·k) distance evaluations against more
//! partitions in the reduced solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freshen_heuristics::kmeans;
use freshen_heuristics::partition::{PartitionCriterion, Partitioning};
use freshen_workload::scenario::Scenario;

fn bench_kmeans(c: &mut Criterion) {
    let problem = Scenario::table3_scaled(100_000, 7).problem().unwrap();
    let mut group = c.benchmark_group("kmeans_100k");
    group.sample_size(10);
    for k in [25usize, 50, 100] {
        let initial =
            Partitioning::by_criterion(&problem, PartitionCriterion::PerceivedFreshness, k, 1.0)
                .unwrap();
        group.bench_with_input(BenchmarkId::new("one_iteration", k), &initial, |b, init| {
            b.iter(|| kmeans::refine(&problem, init, 1).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kmeans);
criterion_main!(benches);
