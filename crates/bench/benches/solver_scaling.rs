//! Scaling ablation of §3: exact Lagrange solver vs generic projected-
//! gradient NLP vs the heuristic pipeline, across problem sizes.
//!
//! The paper's claim: generic NLP is unusable at scale, while partitioned
//! heuristics keep the reduced solve size constant. The exact Lagrange
//! solver (our addition) sits in between — linear per multiplier probe.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freshen_heuristics::multistage::solve_multistage;
use freshen_heuristics::partition::PartitionCriterion;
use freshen_heuristics::{HeuristicConfig, HeuristicScheduler};
use freshen_solver::{LagrangeSolver, ProjectedGradientSolver};
use freshen_workload::scenario::Scenario;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_scaling");
    group.sample_size(10);
    for n in [100usize, 1_000, 10_000] {
        let problem = Scenario::table3_scaled(n, 7).problem().unwrap();

        group.bench_with_input(BenchmarkId::new("lagrange_exact", n), &problem, |b, p| {
            let solver = LagrangeSolver::default();
            b.iter(|| solver.solve(p).unwrap());
        });

        // Cap iterations so the generic solver finishes; its quality at
        // this budget is part of the story.
        group.bench_with_input(
            BenchmarkId::new("projected_gradient_100it", n),
            &problem,
            |b, p| {
                let solver = ProjectedGradientSolver {
                    max_iters: 100,
                    ..Default::default()
                };
                b.iter(|| solver.solve(p).unwrap());
            },
        );

        group.bench_with_input(BenchmarkId::new("heuristic_k50", n), &problem, |b, p| {
            let scheduler = HeuristicScheduler::new(HeuristicConfig {
                num_partitions: 50,
                ..Default::default()
            })
            .unwrap();
            b.iter(|| scheduler.solve(p).unwrap());
        });

        // The paper's rejected §3.2 alternative: k exact sub-solves.
        group.bench_with_input(BenchmarkId::new("multistage_k50", n), &problem, |b, p| {
            b.iter(|| {
                solve_multistage(p, PartitionCriterion::PerceivedFreshness, 50, 1.0).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
