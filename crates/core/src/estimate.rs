//! Estimating change frequencies from observed poll history.
//!
//! The paper assumes "it is possible to obtain the number of updates to an
//! element over some time period", citing Cho & Garcia-Molina's estimation
//! work (its ref \[4\]) for how a poller can estimate a Poisson change rate
//! from *incomplete* observations: each poll only reveals **whether** the
//! element changed since the previous poll, not how many times.
//!
//! Implemented estimators, for an element polled `n` times at regular
//! interval `I` with `x` polls detecting a change:
//!
//! * **naive**: `λ̂ = x / (n·I)` — biased low, because multiple changes
//!   within one interval are counted once;
//! * **ratio (MLE)**: `λ̂ = −ln(1 − x/n) / I` — the maximum-likelihood
//!   estimator, undefined when `x = n`;
//! * **bias-reduced** (Cho & Garcia-Molina's recommended estimator):
//!   `λ̂ = −ln((n − x + 0.5) / (n + 0.5)) / I` — well-defined for all
//!   `0 ≤ x ≤ n` and far less biased for frequently changing elements;
//! * **complete-history MLE** for sources that expose change timestamps:
//!   `λ̂ = (#updates) / T`.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};

/// Poll history for one element: `n` polls at fixed interval `interval`,
/// `x` of which detected a change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PollHistory {
    /// Number of polls performed.
    pub polls: u64,
    /// Number of polls that detected a change since the previous poll.
    pub changes_detected: u64,
    /// Interval between polls, in periods.
    pub interval: f64,
}

impl PollHistory {
    /// Create a validated poll history.
    pub fn new(polls: u64, changes_detected: u64, interval: f64) -> Result<Self> {
        if polls == 0 {
            return Err(CoreError::InvalidConfig(
                "poll history needs at least one poll".into(),
            ));
        }
        if changes_detected > polls {
            return Err(CoreError::InvalidConfig(format!(
                "detected {changes_detected} changes in only {polls} polls"
            )));
        }
        if !interval.is_finite() || interval <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "poll interval",
                index: None,
                value: interval,
            });
        }
        Ok(PollHistory {
            polls,
            changes_detected,
            interval,
        })
    }

    /// Fraction of polls that detected a change.
    pub fn detection_ratio(&self) -> f64 {
        self.changes_detected as f64 / self.polls as f64
    }

    /// True when this history cannot produce a meaningful estimate: no
    /// polls, or a non-finite/non-positive interval. Reachable despite
    /// [`new`](Self::new)'s validation because the fields are public.
    fn is_degenerate(&self) -> bool {
        self.polls == 0 || !self.interval.is_finite() || self.interval <= 0.0
    }

    /// Naive estimator `x / (n·I)` — biased low when changes are frequent.
    ///
    /// Always finite: degenerate histories (zero polls or a zero/negative/
    /// non-finite interval, reachable through the public fields) yield 0
    /// when nothing was detected and the documented [`RATE_CAP`] otherwise,
    /// never `inf`/NaN.
    pub fn estimate_naive(&self) -> f64 {
        if self.is_degenerate() {
            return if self.changes_detected == 0 {
                0.0
            } else {
                RATE_CAP
            };
        }
        let raw = self.changes_detected as f64 / (self.polls as f64 * self.interval);
        raw.min(RATE_CAP)
    }

    /// Maximum-likelihood estimator `−ln(1 − x/n) / I`.
    ///
    /// Returns `None` when every poll detected a change (`x = n`), where
    /// the MLE diverges (`−ln(0) → ∞`), and for degenerate histories
    /// (zero polls or a non-finite/non-positive interval); finite results
    /// are capped at [`RATE_CAP`].
    pub fn estimate_mle(&self) -> Option<f64> {
        if self.is_degenerate() || self.changes_detected >= self.polls {
            return None;
        }
        let r = self.detection_ratio();
        Some((-(1.0 - r).ln() / self.interval).min(RATE_CAP))
    }

    /// Cho & Garcia-Molina's bias-reduced estimator
    /// `−ln((n − x + 0.5)/(n + 0.5)) / I` — defined for all `x ≤ n` and the
    /// one the paper's pipeline would consume.
    ///
    /// Like [`estimate_naive`](Self::estimate_naive), degenerate histories
    /// produce 0 or the documented [`RATE_CAP`] rather than `inf`/NaN, so
    /// a corrupt history can never leak a non-finite rate into the solver.
    pub fn estimate_bias_reduced(&self) -> f64 {
        if self.is_degenerate() {
            return if self.changes_detected == 0 {
                0.0
            } else {
                RATE_CAP
            };
        }
        let n = self.polls as f64;
        let x = self.changes_detected as f64;
        (-(((n - x + 0.5) / (n + 0.5)).ln()) / self.interval).min(RATE_CAP)
    }
}

/// Complete-history estimator for sources that expose change timestamps:
/// the Poisson MLE `λ̂ = count / horizon`.
///
/// Timestamps must be finite, within `[0, horizon]`, and non-decreasing.
/// A timestamp beyond the horizon or out of order is a corrupt change log
/// — counting it would silently bias the rate — so both are rejected with
/// a clean error instead.
pub fn estimate_from_timestamps(change_times: &[f64], horizon: f64) -> Result<f64> {
    if !horizon.is_finite() || horizon <= 0.0 {
        return Err(CoreError::InvalidValue {
            what: "horizon",
            index: None,
            value: horizon,
        });
    }
    let mut prev = 0.0f64;
    for (i, &t) in change_times.iter().enumerate() {
        if !t.is_finite() || t < 0.0 || t > horizon {
            return Err(CoreError::InvalidValue {
                what: "change time",
                index: Some(i),
                value: t,
            });
        }
        if t < prev {
            return Err(CoreError::InvalidValue {
                what: "non-monotone change time",
                index: Some(i),
                value: t,
            });
        }
        prev = t;
    }
    Ok(change_times.len() as f64 / horizon)
}

/// A batch estimator that accumulates poll outcomes per element and emits
/// the change-rate vector the scheduler consumes. This is the mirror-side
/// component the paper describes: "frequency estimates would be
/// periodically communicated to the mirror".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChangeRateEstimator {
    polls: Vec<u64>,
    detections: Vec<u64>,
    interval: f64,
}

impl ChangeRateEstimator {
    /// Create an estimator over `n` elements polled at `interval`.
    pub fn new(n: usize, interval: f64) -> Result<Self> {
        if n == 0 {
            return Err(CoreError::Empty);
        }
        if !interval.is_finite() || interval <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "poll interval",
                index: None,
                value: interval,
            });
        }
        Ok(ChangeRateEstimator {
            polls: vec![0; n],
            detections: vec![0; n],
            interval,
        })
    }

    /// Record the outcome of polling `element`: did it change since the
    /// previous poll?
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn record_poll(&mut self, element: usize, changed: bool) {
        self.polls[element] += 1;
        if changed {
            self.detections[element] += 1;
        }
    }

    /// Number of elements tracked.
    pub fn len(&self) -> usize {
        self.polls.len()
    }

    /// True when tracking zero elements (unreachable via `new`).
    pub fn is_empty(&self) -> bool {
        self.polls.is_empty()
    }

    /// Bias-reduced rate estimates for all elements. Elements never polled
    /// get `fallback` (e.g. the fleet-wide mean rate) rather than a bogus 0.
    pub fn rates(&self, fallback: f64) -> Vec<f64> {
        self.polls
            .iter()
            .zip(&self.detections)
            .map(|(&n, &x)| {
                if n == 0 {
                    fallback
                } else {
                    PollHistory {
                        polls: n,
                        changes_detected: x,
                        interval: self.interval,
                    }
                    .estimate_bias_reduced()
                }
            })
            .collect()
    }
}

/// Floor applied to online rate estimates so downstream [`Problem`]
/// builders (which require strictly positive change rates) never see an
/// exact zero.
///
/// [`Problem`]: crate::problem::Problem
pub const RATE_FLOOR: f64 = 1e-9;

/// Cap applied to rate estimates: a run of all-changed polls over a
/// vanishing (or corrupt) interval must not blow the estimate out to
/// infinity. Every estimator in this module returns values `≤ RATE_CAP`.
pub const RATE_CAP: f64 = 1e9;

/// Recursive (constant-gain stochastic-approximation) online change-rate
/// estimator, following Avrachenkov, Patil & Thoppe's online estimators
/// for web-page change rates.
///
/// Each poll of element `i` after interval `τ` reveals the Bernoulli
/// indicator `I = 1{changed}` with `E[I] = 1 − e^{−λᵢτ}`. The estimator
/// performs one stochastic-approximation step toward the root of that
/// moment equation:
///
/// ```text
/// λ̂ ← λ̂ + (g/τ) · (I − (1 − e^{−λ̂τ}))
/// ```
///
/// With a constant gain `g ∈ (0, 1]` this is the recursive analogue of an
/// exponentially weighted moving average: the fixed point is the true rate
/// and old observations decay geometrically, so the estimate *tracks* a
/// drifting λ instead of averaging over its whole history. The `1/τ`
/// scaling keeps the step size in rate units, making convergence speed
/// first-order independent of the polling interval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EwmaRateEstimator {
    rates: Vec<f64>,
    seen: Vec<u64>,
    gain: f64,
}

impl EwmaRateEstimator {
    /// Create an estimator over `n` elements with step `gain ∈ (0, 1]`,
    /// starting every element at the `prior` rate (e.g. the fleet-wide
    /// mean).
    pub fn new(n: usize, gain: f64, prior: f64) -> Result<Self> {
        if n == 0 {
            return Err(CoreError::Empty);
        }
        if !gain.is_finite() || gain <= 0.0 || gain > 1.0 {
            return Err(CoreError::InvalidValue {
                what: "estimator gain",
                index: None,
                value: gain,
            });
        }
        if !prior.is_finite() || prior <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "prior change rate",
                index: None,
                value: prior,
            });
        }
        Ok(EwmaRateEstimator {
            rates: vec![prior; n],
            seen: vec![0; n],
            gain,
        })
    }

    /// Number of elements tracked.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// True when tracking zero elements (unreachable via `new`).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Fold in one poll outcome: `element` was polled `interval` periods
    /// after its previous poll and `changed` says whether new content was
    /// found.
    pub fn observe(&mut self, element: usize, interval: f64, changed: bool) -> Result<()> {
        if element >= self.rates.len() {
            return Err(CoreError::InvalidValue {
                what: "estimator element",
                index: Some(element),
                value: element as f64,
            });
        }
        if !interval.is_finite() || interval <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "poll interval",
                index: Some(element),
                value: interval,
            });
        }
        let lambda = self.rates[element];
        let expected = 1.0 - (-lambda * interval).exp();
        let indicator = f64::from(changed);
        let step = self.gain / interval * (indicator - expected);
        self.rates[element] = (lambda + step).clamp(RATE_FLOOR, RATE_CAP);
        self.seen[element] += 1;
        Ok(())
    }

    /// Current rate estimate for one element.
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn rate(&self, element: usize) -> f64 {
        self.rates[element]
    }

    /// Polls folded in for one element so far.
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn observations(&self, element: usize) -> u64 {
        self.seen[element]
    }

    /// Current rate estimates for all elements. The `fallback` replaces
    /// the prior for elements never polled, mirroring
    /// [`ChangeRateEstimator::rates`].
    pub fn rates(&self, fallback: f64) -> Vec<f64> {
        self.rates
            .iter()
            .zip(&self.seen)
            .map(|(&r, &n)| if n == 0 { fallback } else { r })
            .collect()
    }

    /// The raw per-element estimates, including priors for never-polled
    /// elements — the checkpointable state, unlike [`rates`](Self::rates)
    /// which substitutes a fallback.
    pub fn raw_rates(&self) -> &[f64] {
        &self.rates
    }

    /// Per-element observation counts (the checkpointable companion to
    /// [`raw_rates`](Self::raw_rates)).
    pub fn observation_counts(&self) -> &[u64] {
        &self.seen
    }

    /// Rebuild an estimator from checkpointed state. The `gain` comes from
    /// configuration; `rates`/`seen` are what
    /// [`raw_rates`](Self::raw_rates) and
    /// [`observation_counts`](Self::observation_counts) exported.
    pub fn from_state(rates: Vec<f64>, seen: Vec<u64>, gain: f64) -> Result<Self> {
        if rates.is_empty() {
            return Err(CoreError::Empty);
        }
        if seen.len() != rates.len() {
            return Err(CoreError::LengthMismatch {
                what: "estimator observation counts",
                expected: rates.len(),
                actual: seen.len(),
            });
        }
        if !gain.is_finite() || gain <= 0.0 || gain > 1.0 {
            return Err(CoreError::InvalidValue {
                what: "estimator gain",
                index: None,
                value: gain,
            });
        }
        for (i, &r) in rates.iter().enumerate() {
            if !r.is_finite() || r <= 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "estimator rate",
                    index: Some(i),
                    value: r,
                });
            }
        }
        Ok(EwmaRateEstimator { rates, seen, gain })
    }
}

/// Sliding-window online change-rate estimator: keeps the last `window`
/// poll outcomes per element and re-runs Cho & Garcia-Molina's
/// bias-reduced estimator over them, using the window's mean interval.
///
/// Compared to [`EwmaRateEstimator`] the window forgets *sharply* rather
/// than geometrically: after `window` polls a rate change is fully
/// reflected, at the cost of `O(window)` memory per element.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowRateEstimator {
    window: usize,
    // Per element: ring of (interval, changed) pairs, newest last.
    intervals: Vec<std::collections::VecDeque<f64>>,
    changes: Vec<std::collections::VecDeque<bool>>,
}

impl WindowRateEstimator {
    /// Create an estimator over `n` elements remembering the last
    /// `window ≥ 1` polls each.
    pub fn new(n: usize, window: usize) -> Result<Self> {
        if n == 0 {
            return Err(CoreError::Empty);
        }
        if window == 0 {
            return Err(CoreError::InvalidConfig(
                "sliding window needs at least one slot".into(),
            ));
        }
        Ok(WindowRateEstimator {
            window,
            intervals: vec![std::collections::VecDeque::with_capacity(window); n],
            changes: vec![std::collections::VecDeque::with_capacity(window); n],
        })
    }

    /// Number of elements tracked.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True when tracking zero elements (unreachable via `new`).
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Fold in one poll outcome, evicting the oldest once the window is
    /// full.
    pub fn observe(&mut self, element: usize, interval: f64, changed: bool) -> Result<()> {
        if element >= self.intervals.len() {
            return Err(CoreError::InvalidValue {
                what: "estimator element",
                index: Some(element),
                value: element as f64,
            });
        }
        if !interval.is_finite() || interval <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "poll interval",
                index: Some(element),
                value: interval,
            });
        }
        if self.intervals[element].len() == self.window {
            self.intervals[element].pop_front();
            self.changes[element].pop_front();
        }
        self.intervals[element].push_back(interval);
        self.changes[element].push_back(changed);
        Ok(())
    }

    /// Bias-reduced rate estimate over one element's window, or `fallback`
    /// when it has never been polled.
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn rate(&self, element: usize, fallback: f64) -> f64 {
        let n = self.intervals[element].len() as u64;
        if n == 0 {
            return fallback;
        }
        let x = self.changes[element].iter().filter(|&&c| c).count() as u64;
        let mean_interval =
            self.intervals[element].iter().sum::<f64>() / self.intervals[element].len() as f64;
        let estimate = PollHistory {
            polls: n,
            changes_detected: x,
            interval: mean_interval,
        }
        .estimate_bias_reduced();
        estimate.clamp(RATE_FLOOR, RATE_CAP)
    }

    /// Polls currently inside one element's window.
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn observations(&self, element: usize) -> u64 {
        self.intervals[element].len() as u64
    }

    /// Rate estimates for all elements (never-polled elements get
    /// `fallback`).
    pub fn rates(&self, fallback: f64) -> Vec<f64> {
        (0..self.intervals.len())
            .map(|i| self.rate(i, fallback))
            .collect()
    }

    /// Window capacity (polls remembered per element).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Checkpointable contents: per element, the retained
    /// `(interval, changed)` pairs oldest-first.
    pub fn entries(&self) -> Vec<Vec<(f64, bool)>> {
        self.intervals
            .iter()
            .zip(&self.changes)
            .map(|(iv, ch)| iv.iter().copied().zip(ch.iter().copied()).collect())
            .collect()
    }

    /// Rebuild an estimator from checkpointed state exported by
    /// [`entries`](Self::entries).
    pub fn from_state(window: usize, entries: Vec<Vec<(f64, bool)>>) -> Result<Self> {
        if entries.is_empty() {
            return Err(CoreError::Empty);
        }
        if window == 0 {
            return Err(CoreError::InvalidConfig(
                "sliding window needs at least one slot".into(),
            ));
        }
        let mut estimator = WindowRateEstimator::new(entries.len(), window)?;
        for (element, polls) in entries.into_iter().enumerate() {
            if polls.len() > window {
                return Err(CoreError::InvalidConfig(format!(
                    "element {element} carries {} polls for a window of {window}",
                    polls.len()
                )));
            }
            for (interval, changed) in polls {
                estimator.observe(element, interval, changed)?;
            }
        }
        Ok(estimator)
    }
}

/// Law-of-large-numbers online change-rate estimator, following
/// Avrachenkov, Patil & Thoppe's LLN estimator for web-page change rates.
///
/// Keeps the *full-history* sufficient statistics per element — polls
/// `n`, detections `x`, and the summed inter-poll interval — in O(1)
/// memory, and inverts the Bernoulli moment equation over the mean
/// interval with Cho & Garcia-Molina's bias-reduced form (finite even at
/// `x = n`). By the strong law of large numbers `x/n → 1 − e^{−λĪ}`
/// almost surely for a stationary source, so the estimate is strongly
/// consistent with estimation error shrinking as `O(1/√n)` — unlike the
/// constant-gain [`EwmaRateEstimator`], whose variance floor never
/// shrinks. The flip side: it averages over its whole history, so after a
/// rate shift the bias decays only as `O(1/n)` per poll.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LlnRateEstimator {
    polls: Vec<u64>,
    detections: Vec<u64>,
    interval_sum: Vec<f64>,
}

impl LlnRateEstimator {
    /// Create an estimator over `n` elements.
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(CoreError::Empty);
        }
        Ok(LlnRateEstimator {
            polls: vec![0; n],
            detections: vec![0; n],
            interval_sum: vec![0.0; n],
        })
    }

    /// Number of elements tracked.
    pub fn len(&self) -> usize {
        self.polls.len()
    }

    /// True when tracking zero elements (unreachable via `new`).
    pub fn is_empty(&self) -> bool {
        self.polls.is_empty()
    }

    /// Fold in one poll outcome.
    pub fn observe(&mut self, element: usize, interval: f64, changed: bool) -> Result<()> {
        if element >= self.polls.len() {
            return Err(CoreError::InvalidValue {
                what: "estimator element",
                index: Some(element),
                value: element as f64,
            });
        }
        if !interval.is_finite() || interval <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "poll interval",
                index: Some(element),
                value: interval,
            });
        }
        self.polls[element] += 1;
        if changed {
            self.detections[element] += 1;
        }
        self.interval_sum[element] += interval;
        Ok(())
    }

    /// Bias-reduced full-history rate estimate for one element, or
    /// `fallback` when it has never been polled.
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn rate(&self, element: usize, fallback: f64) -> f64 {
        let n = self.polls[element];
        if n == 0 {
            return fallback;
        }
        let estimate = PollHistory {
            polls: n,
            changes_detected: self.detections[element],
            interval: self.interval_sum[element] / n as f64,
        }
        .estimate_bias_reduced();
        estimate.clamp(RATE_FLOOR, RATE_CAP)
    }

    /// Polls folded in for one element so far.
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn observations(&self, element: usize) -> u64 {
        self.polls[element]
    }

    /// Rate estimates for all elements (never-polled elements get exactly
    /// `fallback`).
    pub fn rates(&self, fallback: f64) -> Vec<f64> {
        (0..self.polls.len())
            .map(|i| self.rate(i, fallback))
            .collect()
    }

    /// Checkpointable state: per element `(polls, detections,
    /// interval_sum)`.
    pub fn state(&self) -> (&[u64], &[u64], &[f64]) {
        (&self.polls, &self.detections, &self.interval_sum)
    }

    /// Rebuild an estimator from checkpointed state exported by
    /// [`state`](Self::state).
    pub fn from_state(
        polls: Vec<u64>,
        detections: Vec<u64>,
        interval_sum: Vec<f64>,
    ) -> Result<Self> {
        if polls.is_empty() {
            return Err(CoreError::Empty);
        }
        if detections.len() != polls.len() {
            return Err(CoreError::LengthMismatch {
                what: "estimator detections",
                expected: polls.len(),
                actual: detections.len(),
            });
        }
        if interval_sum.len() != polls.len() {
            return Err(CoreError::LengthMismatch {
                what: "estimator interval sums",
                expected: polls.len(),
                actual: interval_sum.len(),
            });
        }
        for (i, ((&n, &x), &iv)) in polls.iter().zip(&detections).zip(&interval_sum).enumerate() {
            if x > n {
                return Err(CoreError::InvalidConfig(format!(
                    "element {i} detected {x} changes in only {n} polls"
                )));
            }
            if !iv.is_finite() || iv < 0.0 || (n > 0 && iv <= 0.0) {
                return Err(CoreError::InvalidValue {
                    what: "estimator interval sum",
                    index: Some(i),
                    value: iv,
                });
            }
        }
        Ok(LlnRateEstimator {
            polls,
            detections,
            interval_sum,
        })
    }
}

/// Stochastic-approximation online change-rate estimator with a
/// *decreasing* gain sequence, following Avrachenkov, Patil & Thoppe's SA
/// estimator for web-page change rates.
///
/// The update is the same moment-equation step as the constant-gain
/// [`EwmaRateEstimator`]:
///
/// ```text
/// λ̂ ← λ̂ + (η_k/τ) · (I − (1 − e^{−λ̂τ}))    η_k = g₀ / (1 + k)^d
/// ```
///
/// but with gain `η_k` decaying in the element's poll count `k`. Under
/// the standard Robbins–Monro conditions (`Ση_k = ∞`, `Ση_k² < ∞`, which
/// `d ∈ (0.5, 1]` satisfies) the iterate converges almost surely to the
/// true rate on a stationary source — the noise floor vanishes instead of
/// persisting as with a constant gain. After a rate shift it re-converges
/// more slowly than EWMA (the gain has already decayed), which is the
/// classic tracking-vs-precision trade the `exp_estimators` bench
/// measures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SaRateEstimator {
    rates: Vec<f64>,
    seen: Vec<u64>,
    gain: f64,
    decay: f64,
}

impl SaRateEstimator {
    /// Create an estimator over `n` elements with initial gain
    /// `gain ∈ (0, 1]` decaying as `(1 + k)^{-decay}` with
    /// `decay ∈ (0.5, 1]`, starting every element at the `prior` rate.
    pub fn new(n: usize, gain: f64, decay: f64, prior: f64) -> Result<Self> {
        if n == 0 {
            return Err(CoreError::Empty);
        }
        if !gain.is_finite() || gain <= 0.0 || gain > 1.0 {
            return Err(CoreError::InvalidValue {
                what: "estimator gain",
                index: None,
                value: gain,
            });
        }
        if !decay.is_finite() || decay <= 0.5 || decay > 1.0 {
            return Err(CoreError::InvalidValue {
                what: "estimator gain decay",
                index: None,
                value: decay,
            });
        }
        if !prior.is_finite() || prior <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "prior change rate",
                index: None,
                value: prior,
            });
        }
        Ok(SaRateEstimator {
            rates: vec![prior; n],
            seen: vec![0; n],
            gain,
            decay,
        })
    }

    /// Number of elements tracked.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// True when tracking zero elements (unreachable via `new`).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Fold in one poll outcome with the element's current (decayed) gain.
    pub fn observe(&mut self, element: usize, interval: f64, changed: bool) -> Result<()> {
        if element >= self.rates.len() {
            return Err(CoreError::InvalidValue {
                what: "estimator element",
                index: Some(element),
                value: element as f64,
            });
        }
        if !interval.is_finite() || interval <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "poll interval",
                index: Some(element),
                value: interval,
            });
        }
        let k = self.seen[element] as f64;
        let eta = self.gain / (1.0 + k).powf(self.decay);
        let lambda = self.rates[element];
        let expected = 1.0 - (-lambda * interval).exp();
        let indicator = f64::from(changed);
        let step = eta / interval * (indicator - expected);
        self.rates[element] = (lambda + step).clamp(RATE_FLOOR, RATE_CAP);
        self.seen[element] += 1;
        Ok(())
    }

    /// Current rate estimate for one element.
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn rate(&self, element: usize) -> f64 {
        self.rates[element]
    }

    /// Polls folded in for one element so far.
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn observations(&self, element: usize) -> u64 {
        self.seen[element]
    }

    /// Current rate estimates for all elements; never-polled elements get
    /// exactly `fallback` instead of the prior.
    pub fn rates(&self, fallback: f64) -> Vec<f64> {
        self.rates
            .iter()
            .zip(&self.seen)
            .map(|(&r, &n)| if n == 0 { fallback } else { r })
            .collect()
    }

    /// The raw per-element estimates including priors — the
    /// checkpointable state.
    pub fn raw_rates(&self) -> &[f64] {
        &self.rates
    }

    /// Per-element observation counts (the checkpointable companion to
    /// [`raw_rates`](Self::raw_rates); they also position the gain
    /// schedule, so kill/resume continues the same decay sequence).
    pub fn observation_counts(&self) -> &[u64] {
        &self.seen
    }

    /// Rebuild an estimator from checkpointed state. `gain`/`decay` come
    /// from configuration; `rates`/`seen` are what
    /// [`raw_rates`](Self::raw_rates) and
    /// [`observation_counts`](Self::observation_counts) exported.
    pub fn from_state(rates: Vec<f64>, seen: Vec<u64>, gain: f64, decay: f64) -> Result<Self> {
        if rates.is_empty() {
            return Err(CoreError::Empty);
        }
        if seen.len() != rates.len() {
            return Err(CoreError::LengthMismatch {
                what: "estimator observation counts",
                expected: rates.len(),
                actual: seen.len(),
            });
        }
        if !gain.is_finite() || gain <= 0.0 || gain > 1.0 {
            return Err(CoreError::InvalidValue {
                what: "estimator gain",
                index: None,
                value: gain,
            });
        }
        if !decay.is_finite() || decay <= 0.5 || decay > 1.0 {
            return Err(CoreError::InvalidValue {
                what: "estimator gain decay",
                index: None,
                value: decay,
            });
        }
        for (i, &r) in rates.iter().enumerate() {
            if !r.is_finite() || r <= 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "estimator rate",
                    index: Some(i),
                    value: r,
                });
            }
        }
        Ok(SaRateEstimator {
            rates,
            seen,
            gain,
            decay,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_validation() {
        assert!(PollHistory::new(0, 0, 1.0).is_err());
        assert!(PollHistory::new(5, 6, 1.0).is_err());
        assert!(PollHistory::new(5, 5, 0.0).is_err());
        assert!(PollHistory::new(5, 5, f64::NAN).is_err());
        assert!(PollHistory::new(5, 5, 1.0).is_ok());
    }

    #[test]
    fn naive_underestimates_fast_changers() {
        // True rate 4 changes/interval: nearly every poll sees a change, so
        // the naive estimate saturates near 1/I while the truth is 4/I.
        let h = PollHistory::new(100, 99, 1.0).unwrap();
        assert!(h.estimate_naive() < 1.0);
        assert!(h.estimate_bias_reduced() > 3.0);
    }

    #[test]
    fn mle_matches_known_value() {
        // x/n = 1 - e^{-λI}; with λ=1, I=1: ratio = 1 - 1/e ≈ 0.632.
        let n = 1000u64;
        let x = ((1.0 - (-1.0f64).exp()) * n as f64).round() as u64;
        let h = PollHistory::new(n, x, 1.0).unwrap();
        let est = h.estimate_mle().unwrap();
        assert!((est - 1.0).abs() < 0.01, "estimated {est}");
    }

    #[test]
    fn mle_diverges_when_all_polls_changed() {
        let h = PollHistory::new(10, 10, 1.0).unwrap();
        assert!(h.estimate_mle().is_none());
        // ... but the bias-reduced estimator still returns a finite value.
        assert!(h.estimate_bias_reduced().is_finite());
    }

    #[test]
    fn bias_reduced_close_to_mle_for_moderate_ratios() {
        let h = PollHistory::new(10_000, 4_000, 1.0).unwrap();
        let mle = h.estimate_mle().unwrap();
        let br = h.estimate_bias_reduced();
        assert!((mle - br).abs() < 1e-3, "mle={mle} br={br}");
    }

    #[test]
    fn zero_detections_zero_rateish() {
        let h = PollHistory::new(100, 0, 1.0).unwrap();
        assert_eq!(h.estimate_naive(), 0.0);
        // With x = 0 the bias-reduced estimator is exactly 0 too:
        // −ln((n+0.5)/(n+0.5)) = 0.
        let br = h.estimate_bias_reduced();
        assert!(br.abs() < 1e-12);
    }

    #[test]
    fn interval_scales_estimates() {
        let h1 = PollHistory::new(100, 50, 1.0).unwrap();
        let h2 = PollHistory::new(100, 50, 2.0).unwrap();
        assert!((h1.estimate_bias_reduced() / h2.estimate_bias_reduced() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn timestamps_mle() {
        let rate = estimate_from_timestamps(&[0.1, 0.5, 0.9, 1.7], 2.0).unwrap();
        assert_eq!(rate, 2.0);
        assert_eq!(estimate_from_timestamps(&[], 4.0).unwrap(), 0.0);
    }

    #[test]
    fn timestamps_validation() {
        assert!(estimate_from_timestamps(&[0.5], 0.0).is_err());
        assert!(estimate_from_timestamps(&[-0.1], 1.0).is_err());
        assert!(estimate_from_timestamps(&[2.0], 1.0).is_err());
    }

    #[test]
    fn batch_estimator_roundtrip() {
        let mut e = ChangeRateEstimator::new(2, 1.0).unwrap();
        // Element 0 changes every poll (fast); element 1 rarely.
        for i in 0..100 {
            e.record_poll(0, i % 2 == 0);
            e.record_poll(1, i == 0);
        }
        let rates = e.rates(99.0);
        assert!(rates[0] > rates[1]);
        assert!(rates[1] > 0.0);
    }

    #[test]
    fn batch_estimator_fallback_for_unpolled() {
        let e = ChangeRateEstimator::new(3, 1.0).unwrap();
        assert_eq!(e.rates(7.0), vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn batch_estimator_validation() {
        assert!(ChangeRateEstimator::new(0, 1.0).is_err());
        assert!(ChangeRateEstimator::new(3, -1.0).is_err());
    }

    /// Deterministic synthetic poll feed: polls at fixed `interval`
    /// against a true Poisson rate, with change indicators drawn from the
    /// exact detection probability via a fixed low-discrepancy sequence.
    fn feed_polls(observe: &mut dyn FnMut(f64, bool), true_rate: f64, interval: f64, polls: usize) {
        let p_change = 1.0 - (-true_rate * interval).exp();
        for k in 0..polls {
            // Weyl sequence: equidistributed in [0,1), no RNG needed.
            let u = ((k as f64 + 0.5) * 0.618_033_988_749_894_9).fract();
            observe(interval, u < p_change);
        }
    }

    #[test]
    fn ewma_estimator_converges_to_true_rate() {
        let mut e = EwmaRateEstimator::new(1, 0.05, 1.0).unwrap();
        feed_polls(&mut |i, c| e.observe(0, i, c).unwrap(), 3.0, 0.25, 4000);
        let est = e.rate(0);
        assert!((est - 3.0).abs() < 0.45, "estimated {est}, want ≈3");
        assert_eq!(e.observations(0), 4000);
    }

    #[test]
    fn ewma_estimator_tracks_a_rate_shift() {
        let mut e = EwmaRateEstimator::new(1, 0.05, 2.0).unwrap();
        feed_polls(&mut |i, c| e.observe(0, i, c).unwrap(), 2.0, 0.5, 2000);
        let before = e.rate(0);
        // The source speeds up 3x; the constant gain forgets the old
        // regime geometrically.
        feed_polls(&mut |i, c| e.observe(0, i, c).unwrap(), 6.0, 0.5, 2000);
        let after = e.rate(0);
        assert!(before < 3.0, "pre-shift estimate {before}");
        assert!(after > 4.0, "post-shift estimate {after} must move up");
    }

    #[test]
    fn ewma_estimator_fallback_and_validation() {
        let e = EwmaRateEstimator::new(2, 0.1, 5.0).unwrap();
        assert_eq!(e.rates(7.0), vec![7.0, 7.0], "unpolled gets fallback");
        assert!(EwmaRateEstimator::new(0, 0.1, 1.0).is_err());
        assert!(EwmaRateEstimator::new(2, 0.0, 1.0).is_err());
        assert!(EwmaRateEstimator::new(2, 1.5, 1.0).is_err());
        assert!(EwmaRateEstimator::new(2, 0.1, 0.0).is_err());
        let mut e = EwmaRateEstimator::new(2, 0.1, 1.0).unwrap();
        assert!(e.observe(5, 1.0, true).is_err(), "out of range");
        assert!(e.observe(0, 0.0, true).is_err(), "bad interval");
        assert!(e.observe(0, f64::NAN, true).is_err());
    }

    #[test]
    fn ewma_estimator_stays_positive_and_finite() {
        let mut e = EwmaRateEstimator::new(1, 1.0, 1.0).unwrap();
        // Pathological feed: all-changed at tiny intervals, then
        // all-unchanged — the clamp keeps the estimate in (0, RATE_CAP].
        for _ in 0..100 {
            e.observe(0, 1e-9, true).unwrap();
        }
        assert!(e.rate(0) <= RATE_CAP && e.rate(0) > 0.0);
        for _ in 0..100 {
            e.observe(0, 1e-9, false).unwrap();
        }
        assert!(e.rate(0) >= RATE_FLOOR);
    }

    #[test]
    fn window_estimator_converges_to_true_rate() {
        let mut e = WindowRateEstimator::new(1, 512).unwrap();
        feed_polls(&mut |i, c| e.observe(0, i, c).unwrap(), 3.0, 0.25, 1000);
        let est = e.rate(0, 99.0);
        assert!((est - 3.0).abs() < 0.4, "estimated {est}, want ≈3");
        assert_eq!(e.observations(0), 512, "window caps retained polls");
    }

    #[test]
    fn window_estimator_forgets_old_regime_completely() {
        let mut e = WindowRateEstimator::new(1, 200).unwrap();
        feed_polls(&mut |i, c| e.observe(0, i, c).unwrap(), 8.0, 0.25, 400);
        // Fill the entire window with the slow regime: the old fast
        // regime must have zero influence left.
        feed_polls(&mut |i, c| e.observe(0, i, c).unwrap(), 1.0, 0.25, 200);
        let est = e.rate(0, 99.0);
        assert!((est - 1.0).abs() < 0.3, "estimated {est}, want ≈1");
    }

    #[test]
    fn window_estimator_fallback_and_validation() {
        let e = WindowRateEstimator::new(3, 10).unwrap();
        assert_eq!(e.rates(4.0), vec![4.0, 4.0, 4.0]);
        assert!(WindowRateEstimator::new(0, 10).is_err());
        assert!(WindowRateEstimator::new(3, 0).is_err());
        let mut e = WindowRateEstimator::new(3, 10).unwrap();
        assert!(e.observe(9, 1.0, true).is_err());
        assert!(e.observe(0, -1.0, true).is_err());
    }

    #[test]
    fn online_estimators_agree_with_batch_in_steady_state() {
        // Same regular feed into the batch and both online estimators:
        // everything should land near the same bias-reduced answer.
        let mut batch = ChangeRateEstimator::new(1, 0.5).unwrap();
        let mut ewma = EwmaRateEstimator::new(1, 0.02, 2.0).unwrap();
        let mut window = WindowRateEstimator::new(1, 1000).unwrap();
        feed_polls(
            &mut |i, c| {
                batch.record_poll(0, c);
                ewma.observe(0, i, c).unwrap();
                window.observe(0, i, c).unwrap();
            },
            2.0,
            0.5,
            1000,
        );
        let b = batch.rates(0.0)[0];
        let e = ewma.rate(0);
        let w = window.rate(0, 0.0);
        assert!((b - w).abs() < 0.05, "batch {b} vs window {w}");
        assert!((b - e).abs() < 0.4, "batch {b} vs ewma {e}");
    }

    #[test]
    fn degenerate_histories_never_produce_non_finite_estimates() {
        // The public fields bypass `new`'s validation, so corrupt
        // histories are constructible; every estimator must stay finite.
        let degenerates = [
            PollHistory {
                polls: 10,
                changes_detected: 3,
                interval: 0.0,
            },
            PollHistory {
                polls: 10,
                changes_detected: 3,
                interval: f64::NAN,
            },
            PollHistory {
                polls: 10,
                changes_detected: 3,
                interval: -1.0,
            },
            PollHistory {
                polls: 0,
                changes_detected: 0,
                interval: 1.0,
            },
        ];
        for h in degenerates {
            assert!(h.estimate_naive().is_finite(), "naive inf for {h:?}");
            assert!(h.estimate_naive() <= RATE_CAP, "naive above cap for {h:?}");
            assert!(
                h.estimate_bias_reduced().is_finite(),
                "bias-reduced inf for {h:?}"
            );
            assert!(h.estimate_mle().is_none(), "mle defined for {h:?}");
        }
        // Degenerate with zero detections: estimates are exactly 0.
        let quiet = PollHistory {
            polls: 0,
            changes_detected: 0,
            interval: 0.0,
        };
        assert_eq!(quiet.estimate_naive(), 0.0);
        assert_eq!(quiet.estimate_bias_reduced(), 0.0);
    }

    #[test]
    fn saturated_detection_ratio_is_capped_not_infinite() {
        // x = n with a tiny interval: −ln(0)-style blow-ups must cap at
        // RATE_CAP instead of leaking inf into the solver.
        let h = PollHistory::new(10, 10, 1e-300).unwrap();
        assert!(h.estimate_mle().is_none(), "MLE diverges at x = n");
        let br = h.estimate_bias_reduced();
        assert!(br.is_finite() && br <= RATE_CAP, "bias-reduced {br}");
        let naive = h.estimate_naive();
        assert!(naive.is_finite() && naive <= RATE_CAP, "naive {naive}");
    }

    #[test]
    fn timestamps_reject_non_monotone_inputs() {
        // Out-of-order change logs bias the rate silently; they must be a
        // clean error instead.
        let err = estimate_from_timestamps(&[0.5, 0.3, 0.9], 1.0).unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidValue {
                what: "non-monotone change time",
                index: Some(1),
                ..
            }
        ));
        // Equal timestamps (two changes observed in the same instant) are
        // fine, as is a properly sorted log.
        assert!(estimate_from_timestamps(&[0.2, 0.2, 0.8], 1.0).is_ok());
        assert_eq!(estimate_from_timestamps(&[0.1, 0.9], 2.0).unwrap(), 1.0);
    }

    #[test]
    fn lln_estimator_converges_to_true_rate() {
        let mut e = LlnRateEstimator::new(1).unwrap();
        feed_polls(&mut |i, c| e.observe(0, i, c).unwrap(), 3.0, 0.25, 4000);
        let est = e.rate(0, 99.0);
        assert!((est - 3.0).abs() < 0.2, "estimated {est}, want ≈3");
        assert_eq!(e.observations(0), 4000);
    }

    #[test]
    fn lln_estimator_fallback_and_validation() {
        let e = LlnRateEstimator::new(2).unwrap();
        assert_eq!(e.rates(7.0), vec![7.0, 7.0], "unpolled gets fallback");
        assert!(LlnRateEstimator::new(0).is_err());
        let mut e = LlnRateEstimator::new(2).unwrap();
        assert!(e.observe(5, 1.0, true).is_err(), "out of range");
        assert!(e.observe(0, 0.0, true).is_err(), "bad interval");
        // x = n stays finite through the bias-reduced inversion.
        for _ in 0..50 {
            e.observe(0, 0.5, true).unwrap();
        }
        assert!(e.rate(0, 0.0).is_finite());
    }

    #[test]
    fn lln_state_roundtrip() {
        let mut e = LlnRateEstimator::new(3).unwrap();
        feed_polls(&mut |i, c| e.observe(1, i, c).unwrap(), 2.0, 0.5, 100);
        let (polls, detections, intervals) = e.state();
        let back =
            LlnRateEstimator::from_state(polls.to_vec(), detections.to_vec(), intervals.to_vec())
                .unwrap();
        assert_eq!(back.rates(9.0), e.rates(9.0));
        assert!(LlnRateEstimator::from_state(vec![1], vec![2], vec![1.0]).is_err());
        assert!(LlnRateEstimator::from_state(vec![1], vec![0], vec![]).is_err());
        assert!(LlnRateEstimator::from_state(vec![1], vec![0], vec![f64::NAN]).is_err());
    }

    #[test]
    fn sa_estimator_converges_to_true_rate() {
        let mut e = SaRateEstimator::new(1, 1.0, 0.6, 1.0).unwrap();
        feed_polls(&mut |i, c| e.observe(0, i, c).unwrap(), 3.0, 0.25, 4000);
        let est = e.rate(0);
        assert!((est - 3.0).abs() < 0.25, "estimated {est}, want ≈3");
        assert_eq!(e.observations(0), 4000);
    }

    #[test]
    fn sa_beats_constant_gain_in_steady_state() {
        // Same feed: the decreasing-gain iterate must land closer to the
        // truth than the constant-gain EWMA, whose noise floor persists.
        let mut sa = SaRateEstimator::new(1, 1.0, 0.6, 1.0).unwrap();
        let mut ewma = EwmaRateEstimator::new(1, 0.05, 1.0).unwrap();
        feed_polls(
            &mut |i, c| {
                sa.observe(0, i, c).unwrap();
                ewma.observe(0, i, c).unwrap();
            },
            2.0,
            0.5,
            8000,
        );
        let sa_err = (sa.rate(0) - 2.0).abs();
        let ewma_err = (ewma.rate(0) - 2.0).abs();
        assert!(
            sa_err <= ewma_err + 1e-9,
            "sa error {sa_err} vs ewma error {ewma_err}"
        );
    }

    #[test]
    fn sa_estimator_fallback_and_validation() {
        let e = SaRateEstimator::new(2, 0.5, 0.75, 5.0).unwrap();
        assert_eq!(e.rates(7.0), vec![7.0, 7.0], "unpolled gets fallback");
        assert!(SaRateEstimator::new(0, 0.5, 0.75, 1.0).is_err());
        assert!(SaRateEstimator::new(2, 0.0, 0.75, 1.0).is_err());
        assert!(SaRateEstimator::new(2, 1.5, 0.75, 1.0).is_err());
        assert!(
            SaRateEstimator::new(2, 0.5, 0.5, 1.0).is_err(),
            "decay too small"
        );
        assert!(
            SaRateEstimator::new(2, 0.5, 1.5, 1.0).is_err(),
            "decay too large"
        );
        assert!(SaRateEstimator::new(2, 0.5, 0.75, 0.0).is_err());
        let mut e = SaRateEstimator::new(2, 0.5, 0.75, 1.0).unwrap();
        assert!(e.observe(5, 1.0, true).is_err(), "out of range");
        assert!(e.observe(0, 0.0, true).is_err(), "bad interval");
    }

    #[test]
    fn sa_state_roundtrip_continues_the_gain_schedule() {
        let mut e = SaRateEstimator::new(2, 1.0, 0.6, 1.0).unwrap();
        feed_polls(&mut |i, c| e.observe(0, i, c).unwrap(), 2.0, 0.5, 500);
        let back = SaRateEstimator::from_state(
            e.raw_rates().to_vec(),
            e.observation_counts().to_vec(),
            1.0,
            0.6,
        )
        .unwrap();
        assert_eq!(back.raw_rates(), e.raw_rates());
        assert_eq!(back.observations(0), 500);
        // Continuing both from the same point stays bit-identical.
        let mut a = e.clone();
        let mut b = back;
        feed_polls(&mut |i, c| a.observe(0, i, c).unwrap(), 2.0, 0.5, 100);
        feed_polls(&mut |i, c| b.observe(0, i, c).unwrap(), 2.0, 0.5, 100);
        assert_eq!(a.raw_rates(), b.raw_rates());
        assert!(SaRateEstimator::from_state(vec![1.0], vec![0, 0], 0.5, 0.75).is_err());
        assert!(SaRateEstimator::from_state(vec![-1.0], vec![0], 0.5, 0.75).is_err());
    }
}
