//! Estimating change frequencies from observed poll history.
//!
//! The paper assumes "it is possible to obtain the number of updates to an
//! element over some time period", citing Cho & Garcia-Molina's estimation
//! work (its ref [4]) for how a poller can estimate a Poisson change rate
//! from *incomplete* observations: each poll only reveals **whether** the
//! element changed since the previous poll, not how many times.
//!
//! Implemented estimators, for an element polled `n` times at regular
//! interval `I` with `x` polls detecting a change:
//!
//! * **naive**: `λ̂ = x / (n·I)` — biased low, because multiple changes
//!   within one interval are counted once;
//! * **ratio (MLE)**: `λ̂ = −ln(1 − x/n) / I` — the maximum-likelihood
//!   estimator, undefined when `x = n`;
//! * **bias-reduced** (Cho & Garcia-Molina's recommended estimator):
//!   `λ̂ = −ln((n − x + 0.5) / (n + 0.5)) / I` — well-defined for all
//!   `0 ≤ x ≤ n` and far less biased for frequently changing elements;
//! * **complete-history MLE** for sources that expose change timestamps:
//!   `λ̂ = (#updates) / T`.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};

/// Poll history for one element: `n` polls at fixed interval `interval`,
/// `x` of which detected a change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PollHistory {
    /// Number of polls performed.
    pub polls: u64,
    /// Number of polls that detected a change since the previous poll.
    pub changes_detected: u64,
    /// Interval between polls, in periods.
    pub interval: f64,
}

impl PollHistory {
    /// Create a validated poll history.
    pub fn new(polls: u64, changes_detected: u64, interval: f64) -> Result<Self> {
        if polls == 0 {
            return Err(CoreError::InvalidConfig(
                "poll history needs at least one poll".into(),
            ));
        }
        if changes_detected > polls {
            return Err(CoreError::InvalidConfig(format!(
                "detected {changes_detected} changes in only {polls} polls"
            )));
        }
        if !interval.is_finite() || interval <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "poll interval",
                index: None,
                value: interval,
            });
        }
        Ok(PollHistory {
            polls,
            changes_detected,
            interval,
        })
    }

    /// Fraction of polls that detected a change.
    pub fn detection_ratio(&self) -> f64 {
        self.changes_detected as f64 / self.polls as f64
    }

    /// Naive estimator `x / (n·I)` — biased low when changes are frequent.
    pub fn estimate_naive(&self) -> f64 {
        self.changes_detected as f64 / (self.polls as f64 * self.interval)
    }

    /// Maximum-likelihood estimator `−ln(1 − x/n) / I`.
    ///
    /// Returns `None` when every poll detected a change (`x = n`), where
    /// the MLE diverges.
    pub fn estimate_mle(&self) -> Option<f64> {
        if self.changes_detected == self.polls {
            return None;
        }
        let r = self.detection_ratio();
        Some(-(1.0 - r).ln() / self.interval)
    }

    /// Cho & Garcia-Molina's bias-reduced estimator
    /// `−ln((n − x + 0.5)/(n + 0.5)) / I` — defined for all `x ≤ n` and the
    /// one the paper's pipeline would consume.
    pub fn estimate_bias_reduced(&self) -> f64 {
        let n = self.polls as f64;
        let x = self.changes_detected as f64;
        -(((n - x + 0.5) / (n + 0.5)).ln()) / self.interval
    }
}

/// Complete-history estimator for sources that expose change timestamps:
/// the Poisson MLE `λ̂ = count / horizon`.
pub fn estimate_from_timestamps(change_times: &[f64], horizon: f64) -> Result<f64> {
    if !horizon.is_finite() || horizon <= 0.0 {
        return Err(CoreError::InvalidValue {
            what: "horizon",
            index: None,
            value: horizon,
        });
    }
    for (i, &t) in change_times.iter().enumerate() {
        if !t.is_finite() || t < 0.0 || t > horizon {
            return Err(CoreError::InvalidValue {
                what: "change time",
                index: Some(i),
                value: t,
            });
        }
    }
    Ok(change_times.len() as f64 / horizon)
}

/// A batch estimator that accumulates poll outcomes per element and emits
/// the change-rate vector the scheduler consumes. This is the mirror-side
/// component the paper describes: "frequency estimates would be
/// periodically communicated to the mirror".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChangeRateEstimator {
    polls: Vec<u64>,
    detections: Vec<u64>,
    interval: f64,
}

impl ChangeRateEstimator {
    /// Create an estimator over `n` elements polled at `interval`.
    pub fn new(n: usize, interval: f64) -> Result<Self> {
        if n == 0 {
            return Err(CoreError::Empty);
        }
        if !interval.is_finite() || interval <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "poll interval",
                index: None,
                value: interval,
            });
        }
        Ok(ChangeRateEstimator {
            polls: vec![0; n],
            detections: vec![0; n],
            interval,
        })
    }

    /// Record the outcome of polling `element`: did it change since the
    /// previous poll?
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn record_poll(&mut self, element: usize, changed: bool) {
        self.polls[element] += 1;
        if changed {
            self.detections[element] += 1;
        }
    }

    /// Number of elements tracked.
    pub fn len(&self) -> usize {
        self.polls.len()
    }

    /// True when tracking zero elements (unreachable via `new`).
    pub fn is_empty(&self) -> bool {
        self.polls.is_empty()
    }

    /// Bias-reduced rate estimates for all elements. Elements never polled
    /// get `fallback` (e.g. the fleet-wide mean rate) rather than a bogus 0.
    pub fn rates(&self, fallback: f64) -> Vec<f64> {
        self.polls
            .iter()
            .zip(&self.detections)
            .map(|(&n, &x)| {
                if n == 0 {
                    fallback
                } else {
                    PollHistory {
                        polls: n,
                        changes_detected: x,
                        interval: self.interval,
                    }
                    .estimate_bias_reduced()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_validation() {
        assert!(PollHistory::new(0, 0, 1.0).is_err());
        assert!(PollHistory::new(5, 6, 1.0).is_err());
        assert!(PollHistory::new(5, 5, 0.0).is_err());
        assert!(PollHistory::new(5, 5, f64::NAN).is_err());
        assert!(PollHistory::new(5, 5, 1.0).is_ok());
    }

    #[test]
    fn naive_underestimates_fast_changers() {
        // True rate 4 changes/interval: nearly every poll sees a change, so
        // the naive estimate saturates near 1/I while the truth is 4/I.
        let h = PollHistory::new(100, 99, 1.0).unwrap();
        assert!(h.estimate_naive() < 1.0);
        assert!(h.estimate_bias_reduced() > 3.0);
    }

    #[test]
    fn mle_matches_known_value() {
        // x/n = 1 - e^{-λI}; with λ=1, I=1: ratio = 1 - 1/e ≈ 0.632.
        let n = 1000u64;
        let x = ((1.0 - (-1.0f64).exp()) * n as f64).round() as u64;
        let h = PollHistory::new(n, x, 1.0).unwrap();
        let est = h.estimate_mle().unwrap();
        assert!((est - 1.0).abs() < 0.01, "estimated {est}");
    }

    #[test]
    fn mle_diverges_when_all_polls_changed() {
        let h = PollHistory::new(10, 10, 1.0).unwrap();
        assert!(h.estimate_mle().is_none());
        // ... but the bias-reduced estimator still returns a finite value.
        assert!(h.estimate_bias_reduced().is_finite());
    }

    #[test]
    fn bias_reduced_close_to_mle_for_moderate_ratios() {
        let h = PollHistory::new(10_000, 4_000, 1.0).unwrap();
        let mle = h.estimate_mle().unwrap();
        let br = h.estimate_bias_reduced();
        assert!((mle - br).abs() < 1e-3, "mle={mle} br={br}");
    }

    #[test]
    fn zero_detections_zero_rateish() {
        let h = PollHistory::new(100, 0, 1.0).unwrap();
        assert_eq!(h.estimate_naive(), 0.0);
        // With x = 0 the bias-reduced estimator is exactly 0 too:
        // −ln((n+0.5)/(n+0.5)) = 0.
        let br = h.estimate_bias_reduced();
        assert!(br.abs() < 1e-12);
    }

    #[test]
    fn interval_scales_estimates() {
        let h1 = PollHistory::new(100, 50, 1.0).unwrap();
        let h2 = PollHistory::new(100, 50, 2.0).unwrap();
        assert!((h1.estimate_bias_reduced() / h2.estimate_bias_reduced() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn timestamps_mle() {
        let rate = estimate_from_timestamps(&[0.1, 0.5, 0.9, 1.7], 2.0).unwrap();
        assert_eq!(rate, 2.0);
        assert_eq!(estimate_from_timestamps(&[], 4.0).unwrap(), 0.0);
    }

    #[test]
    fn timestamps_validation() {
        assert!(estimate_from_timestamps(&[0.5], 0.0).is_err());
        assert!(estimate_from_timestamps(&[-0.1], 1.0).is_err());
        assert!(estimate_from_timestamps(&[2.0], 1.0).is_err());
    }

    #[test]
    fn batch_estimator_roundtrip() {
        let mut e = ChangeRateEstimator::new(2, 1.0).unwrap();
        // Element 0 changes every poll (fast); element 1 rarely.
        for i in 0..100 {
            e.record_poll(0, i % 2 == 0);
            e.record_poll(1, i == 0);
        }
        let rates = e.rates(99.0);
        assert!(rates[0] > rates[1]);
        assert!(rates[1] > 0.0);
    }

    #[test]
    fn batch_estimator_fallback_for_unpolled() {
        let e = ChangeRateEstimator::new(3, 1.0).unwrap();
        assert_eq!(e.rates(7.0), vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn batch_estimator_validation() {
        assert!(ChangeRateEstimator::new(0, 1.0).is_err());
        assert!(ChangeRateEstimator::new(3, -1.0).is_err());
    }
}
