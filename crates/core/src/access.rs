//! Access sets and the empirical perceived-freshness score.
//!
//! Paper Definitions 3–4: the perceived freshness of a set of accesses `A`
//! is the fraction of accesses that saw an up-to-date copy — "keeping score
//! at each access". This module provides the access-log types used by the
//! monitoring-mode freshness evaluator in `freshen-sim`, plus the scoring
//! arithmetic itself, which is independent of any simulator.

use serde::{Deserialize, Serialize};

/// One recorded access to the mirror.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Access {
    /// Simulation/wall time of the access.
    pub time: f64,
    /// Which element was accessed.
    pub element: usize,
    /// Whether the local copy was up-to-date at access time.
    pub fresh: bool,
}

/// A running tally of accesses and how many saw fresh copies — the
/// "score-keeping" user of §2. Cheap to merge, so per-thread scores can be
/// combined.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreshnessScore {
    /// Total accesses observed.
    pub total: u64,
    /// Accesses that saw an up-to-date copy.
    pub fresh: u64,
}

impl FreshnessScore {
    /// Empty score.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one access.
    pub fn record(&mut self, fresh: bool) {
        self.total += 1;
        if fresh {
            self.fresh += 1;
        }
    }

    /// Record a full access log.
    pub fn record_all<'a>(&mut self, accesses: impl IntoIterator<Item = &'a Access>) {
        for a in accesses {
            self.record(a.fresh);
        }
    }

    /// Empirical perceived freshness: `fresh / total` (Definition 3).
    /// Returns `None` before the first access (the metric is undefined on
    /// an empty access set).
    pub fn perceived_freshness(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.fresh as f64 / self.total as f64)
        }
    }

    /// Merge another score into this one.
    pub fn merge(&mut self, other: &FreshnessScore) {
        self.total += other.total;
        self.fresh += other.fresh;
    }
}

/// Per-element breakdown of the empirical score; useful for diagnosing
/// *which* objects users experience as stale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerElementScore {
    scores: Vec<FreshnessScore>,
}

impl PerElementScore {
    /// Create a breakdown for `n` elements.
    pub fn new(n: usize) -> Self {
        PerElementScore {
            scores: vec![FreshnessScore::default(); n],
        }
    }

    /// Number of elements tracked.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when tracking zero elements.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Record one access.
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn record(&mut self, element: usize, fresh: bool) {
        self.scores[element].record(fresh);
    }

    /// Score for one element.
    pub fn element(&self, i: usize) -> FreshnessScore {
        self.scores[i]
    }

    /// Overall score (sum over elements).
    pub fn overall(&self) -> FreshnessScore {
        let mut total = FreshnessScore::default();
        for s in &self.scores {
            total.merge(s);
        }
        total
    }

    /// Elements that were accessed at least once but *never* fresh — the
    /// worst user experience.
    pub fn always_stale_elements(&self) -> Vec<usize> {
        self.scores
            .iter()
            .enumerate()
            .filter(|(_, s)| s.total > 0 && s.fresh == 0)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_score_is_undefined() {
        assert_eq!(FreshnessScore::new().perceived_freshness(), None);
    }

    #[test]
    fn score_fraction() {
        let mut s = FreshnessScore::new();
        s.record(true);
        s.record(true);
        s.record(false);
        s.record(true);
        assert_eq!(s.perceived_freshness(), Some(0.75));
    }

    #[test]
    fn record_all_from_log() {
        let log = vec![
            Access {
                time: 0.1,
                element: 0,
                fresh: true,
            },
            Access {
                time: 0.2,
                element: 1,
                fresh: false,
            },
        ];
        let mut s = FreshnessScore::new();
        s.record_all(&log);
        assert_eq!(s.total, 2);
        assert_eq!(s.fresh, 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = FreshnessScore {
            total: 10,
            fresh: 7,
        };
        let b = FreshnessScore { total: 5, fresh: 5 };
        a.merge(&b);
        assert_eq!(
            a,
            FreshnessScore {
                total: 15,
                fresh: 12
            }
        );
    }

    #[test]
    fn per_element_overall_matches_sum() {
        let mut pe = PerElementScore::new(3);
        pe.record(0, true);
        pe.record(0, false);
        pe.record(2, true);
        let overall = pe.overall();
        assert_eq!(overall.total, 3);
        assert_eq!(overall.fresh, 2);
        assert_eq!(pe.element(1).total, 0);
    }

    #[test]
    fn always_stale_detection() {
        let mut pe = PerElementScore::new(4);
        pe.record(0, true);
        pe.record(1, false);
        pe.record(1, false);
        pe.record(3, false);
        pe.record(3, true);
        assert_eq!(pe.always_stale_elements(), vec![1]);
    }

    #[test]
    #[should_panic]
    fn per_element_oob_panics() {
        let mut pe = PerElementScore::new(1);
        pe.record(1, true);
    }
}
