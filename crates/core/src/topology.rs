//! Multi-tier relay topologies: source → relay(s) → edge-mirror DAGs
//! and the composed-freshness recursion evaluated over them.
//!
//! The paper's model has one mirror polling one source. CDN-shaped
//! deployments interpose relay tiers: an edge mirror polls a relay,
//! the relay polls the source, and each hop has its own bandwidth
//! budget. End-user perceived freshness is measured **at the edge**,
//! where an element's copy is fresh only if every hop of some path has
//! propagated the current source version.
//!
//! ## The composed-freshness recursion
//!
//! Element `i` changes at the source as a Poisson process with rate
//! `λᵢ`. By PASTA, at a random observation instant the age `A` of the
//! current source version is `Exp(λᵢ)`. A tier's copy is fresh iff a
//! chain of successive polls — one per hop on some source→tier path —
//! completed inside that age window. Because poll processes are
//! independent of the change process (and of each other), the wait at
//! each hop after the upstream acquires the version is the stationary
//! residual of that hop's poll process: `Exp(f)` for Poisson polling,
//! `Unif(0, 1/f)` for Fixed-Order polling with an independent phase.
//! The chain therefore completes within `A` with probability
//!
//! ```text
//! P(Σⱼ Wⱼ ≤ A) = E[e^{−λ·ΣWⱼ}] = Πⱼ E[e^{−λWⱼ}] = Πⱼ F̄(λ, fⱼ)
//! ```
//!
//! — the per-hop Laplace transform `E[e^{−λW}]` is *exactly* the
//! single-hop freshness law of the policy (`(f/λ)(1−e^{−λ/f})` for
//! Fixed-Order, `f/(λ+f)` for Poisson). Composed freshness down a
//! chain is the **product of per-hop freshness factors at the original
//! source rate**: the recursion `F_k = F_{k−1} · F̄(λ, f_k)` from the
//! cache-chain analysis (Bastopcu & Ulukus's cache updating systems),
//! with the attenuation of upstream staleness appearing as the
//! `F_{k−1}` factor.
//!
//! A node with several parents (Kaswan et al.'s parallel relays) is
//! fresh unless *every* parent path failed to deliver. Conditioned on
//! the version age the per-parent chains are independent, so the
//! recursion composes as `F = 1 − Π_r (1 − F_r · F̄(λ, f_r))`. (The
//! closed form multiplies the *unconditional* path probabilities; the
//! exact value couples the paths through the shared age and is
//! slightly lower. For a single parent the expression is exact; the
//! Monte-Carlo validator in `freshen-sim` measures the gap.)
//!
//! Version-aware merging is assumed throughout: a poll replaces the
//! local copy only with a strictly newer version, so a stale parent
//! can never overwrite a fresher copy delivered by another path.

use crate::error::{CoreError, Result};
use crate::json::Json;
use crate::numeric::NeumaierSum;
use crate::policy::SyncPolicy;
use crate::problem::{Problem, ProblemBuilder};

/// One directed hop: `to` polls `from` over this link, optionally for
/// only a subset of elements.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// Upstream node index.
    pub from: usize,
    /// Downstream node index (the poller; budget is drawn from it).
    pub to: usize,
    /// Elements carried by this link (sorted, deduplicated), or `None`
    /// for the full element set.
    pub elements: Option<Vec<usize>>,
}

impl Link {
    /// Whether this link carries element `i`.
    #[inline]
    pub fn carries(&self, i: usize) -> bool {
        match &self.elements {
            None => true,
            Some(subset) => subset.binary_search(&i).is_ok(),
        }
    }
}

/// A validated source → relay(s) → edge-mirror DAG.
///
/// Node 0 is always the source; every other node is a tier with its
/// own bandwidth budget and per-poll cost scale. Cycles, orphan nodes,
/// dangling link endpoints, and subsets of elements the upstream does
/// not mirror are all rejected at [`TopologyBuilder::build`] time as
/// [`CoreError`]s — an instance of this type is structurally sound by
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    names: Vec<String>,
    budgets: Vec<f64>,
    poll_costs: Vec<f64>,
    links: Vec<Link>,
    incoming: Vec<Vec<usize>>,
    outgoing: Vec<Vec<usize>>,
    order: Vec<usize>,
    sinks: Vec<usize>,
    n_elements: usize,
}

/// Per-link refresh frequencies for a [`Topology`] — the tiered
/// counterpart of a flat frequency vector.
#[derive(Debug, Clone, PartialEq)]
pub struct TieredSchedule {
    /// `link_freqs[l][i]` is the poll frequency of element `i` over
    /// link `l` (same order as [`Topology::links`]); elements a link
    /// does not carry must sit at 0.
    pub link_freqs: Vec<Vec<f64>>,
}

impl TieredSchedule {
    /// An all-zero schedule shaped for `topology`.
    pub fn zero(topology: &Topology) -> TieredSchedule {
        TieredSchedule {
            link_freqs: vec![vec![0.0; topology.n_elements()]; topology.links().len()],
        }
    }

    /// Structural validation against a topology: one full-length,
    /// finite, non-negative vector per link, zero off the carried set.
    pub fn validate(&self, topology: &Topology) -> Result<()> {
        if self.link_freqs.len() != topology.links().len() {
            return Err(CoreError::LengthMismatch {
                what: "tiered schedule links",
                expected: topology.links().len(),
                actual: self.link_freqs.len(),
            });
        }
        for (l, freqs) in self.link_freqs.iter().enumerate() {
            if freqs.len() != topology.n_elements() {
                return Err(CoreError::LengthMismatch {
                    what: "tiered schedule frequencies",
                    expected: topology.n_elements(),
                    actual: freqs.len(),
                });
            }
            let link = &topology.links()[l];
            for (i, &f) in freqs.iter().enumerate() {
                if !f.is_finite() || f < 0.0 {
                    return Err(CoreError::InvalidValue {
                        what: "tiered schedule frequency",
                        index: Some(i),
                        value: f,
                    });
                }
                if f > 0.0 && !link.carries(i) {
                    return Err(CoreError::InvalidConfig(format!(
                        "topology: link {} does not carry element {i} but its \
                         schedule gives it frequency {f}",
                        topology.link_label(l)
                    )));
                }
            }
        }
        Ok(())
    }
}

impl Topology {
    /// Start building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Number of nodes, source included.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// The element-universe size this topology was validated against.
    pub fn n_elements(&self) -> usize {
        self.n_elements
    }

    /// Node names; index 0 is the source.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Per-node bandwidth budgets (0 for the source, which never
    /// polls).
    pub fn budgets(&self) -> &[f64] {
        &self.budgets
    }

    /// Per-node per-poll cost scale (multiplies the problem's cost
    /// column for polls issued by that node).
    pub fn poll_costs(&self) -> &[f64] {
        &self.poll_costs
    }

    /// All links, in declaration order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Indices into [`links`](Self::links) of the links *into* `node`
    /// (the polls that draw on `node`'s budget).
    pub fn incoming(&self, node: usize) -> &[usize] {
        &self.incoming[node]
    }

    /// Indices into [`links`](Self::links) of the links *out of*
    /// `node`.
    pub fn outgoing(&self, node: usize) -> &[usize] {
        &self.outgoing[node]
    }

    /// Nodes in topological order; `order()[0]` is the source.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Edge mirrors: nodes with no outgoing links. PF is measured here.
    pub fn sinks(&self) -> &[usize] {
        &self.sinks
    }

    /// Node index by name.
    pub fn node_id(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// `"from→to"` display label for link `l`.
    pub fn link_label(&self, l: usize) -> String {
        let link = &self.links[l];
        format!("{}→{}", self.names[link.from], self.names[link.to])
    }

    /// True when every non-source node has exactly one parent (chains
    /// and trees) — the case where the composed recursion is exact and
    /// the tiered block solve is an exact block maximization.
    pub fn is_tree(&self) -> bool {
        (1..self.node_count()).all(|n| self.incoming[n].len() == 1)
    }

    /// Per-node, per-element composed freshness under `schedule`.
    ///
    /// Row `n` is node `n`'s probability of holding the current source
    /// version of each element at a random instant, by the recursion
    /// documented on the module. The source row is all ones; an
    /// element with no carrying path into a node scores 0 there.
    pub fn node_freshness(
        &self,
        problem: &Problem,
        schedule: &TieredSchedule,
        policy: SyncPolicy,
    ) -> Result<Vec<Vec<f64>>> {
        self.check_problem(problem)?;
        schedule.validate(self)?;
        let lam = problem.change_rates();
        let n = self.n_elements;
        let mut fresh = vec![vec![0.0f64; n]; self.node_count()];
        fresh[0] = vec![1.0; n];
        for &node in &self.order {
            if node == 0 {
                continue;
            }
            let row = &mut vec![0.0f64; n];
            for i in 0..n {
                // Staleness is the product over carrying parents of
                // each path failing to deliver inside the age window.
                let mut stale = 1.0f64;
                let mut carried = false;
                for &l in &self.incoming[node] {
                    let link = &self.links[l];
                    if !link.carries(i) {
                        continue;
                    }
                    carried = true;
                    let hop = policy.freshness(lam[i], schedule.link_freqs[l][i]);
                    stale *= 1.0 - fresh[link.from][i] * hop;
                }
                row[i] = if carried { 1.0 - stale } else { 0.0 };
            }
            fresh[node] = std::mem::take(row);
        }
        Ok(fresh)
    }

    /// Perceived freshness `Σ pᵢ·Fᵢ` at each node (compensated sum).
    pub fn node_pf(
        &self,
        problem: &Problem,
        schedule: &TieredSchedule,
        policy: SyncPolicy,
    ) -> Result<Vec<f64>> {
        let fresh = self.node_freshness(problem, schedule, policy)?;
        let p = problem.access_probs();
        Ok(fresh
            .iter()
            .map(|row| {
                let mut acc = NeumaierSum::new();
                for (w, f) in p.iter().zip(row) {
                    if *w != 0.0 {
                        acc.add(w * f);
                    }
                }
                acc.total()
            })
            .collect())
    }

    /// End-user PF: the mean of [`node_pf`](Self::node_pf) over the
    /// edge mirrors (sinks weighted uniformly).
    pub fn edge_pf(
        &self,
        problem: &Problem,
        schedule: &TieredSchedule,
        policy: SyncPolicy,
    ) -> Result<f64> {
        let pf = self.node_pf(problem, schedule, policy)?;
        let mut acc = NeumaierSum::new();
        for &s in &self.sinks {
            acc.add(pf[s]);
        }
        Ok(acc.total() / self.sinks.len() as f64)
    }

    /// Bandwidth spent by each node (the sum over its incoming links
    /// of `Σ sᵢ·fᵢ`, compensated).
    pub fn node_spend(&self, problem: &Problem, schedule: &TieredSchedule) -> Result<Vec<f64>> {
        self.check_problem(problem)?;
        schedule.validate(self)?;
        let sizes = problem.sizes();
        let mut spend = vec![0.0f64; self.node_count()];
        for (node, s) in spend.iter_mut().enumerate() {
            let mut acc = NeumaierSum::new();
            for &l in &self.incoming[node] {
                for (i, &f) in schedule.link_freqs[l].iter().enumerate() {
                    if f != 0.0 {
                        acc.add(f * sizes[i]);
                    }
                }
            }
            *s = acc.total();
        }
        Ok(spend)
    }

    /// Verify no node spends beyond its budget (relative tolerance
    /// `tol`); the breach names the node and the overdraft.
    pub fn check_budgets(
        &self,
        problem: &Problem,
        schedule: &TieredSchedule,
        tol: f64,
    ) -> Result<()> {
        let spend = self.node_spend(problem, schedule)?;
        for (node, &used) in spend.iter().enumerate().skip(1) {
            let budget = self.budgets[node];
            if used > budget * (1.0 + tol) {
                return Err(CoreError::Inconsistent {
                    routine: "topology budget check",
                    invariant: "a tier spent more bandwidth than its budget",
                });
            }
        }
        Ok(())
    }

    /// A copy with different per-node budgets (source entry ignored);
    /// structure is untouched so no re-validation is needed.
    pub fn with_budgets(&self, budgets: &[f64]) -> Result<Topology> {
        if budgets.len() != self.node_count() {
            return Err(CoreError::LengthMismatch {
                what: "topology budgets",
                expected: self.node_count(),
                actual: budgets.len(),
            });
        }
        for (n, &b) in budgets.iter().enumerate().skip(1) {
            if !b.is_finite() || b <= 0.0 {
                return Err(CoreError::InvalidConfig(format!(
                    "topology: budget for tier `{}` must be positive and finite, got {b}",
                    self.names[n]
                )));
            }
        }
        let mut out = self.clone();
        out.budgets = budgets.to_vec();
        out.budgets[0] = 0.0;
        Ok(out)
    }

    fn check_problem(&self, problem: &Problem) -> Result<()> {
        if problem.len() != self.n_elements {
            return Err(CoreError::LengthMismatch {
                what: "topology elements",
                expected: self.n_elements,
                actual: problem.len(),
            });
        }
        Ok(())
    }

    /// Parse a topology from its JSON spec (see `DESIGN.md` §17):
    ///
    /// ```json
    /// {"nodes": [{"id": "origin", "role": "source"},
    ///            {"id": "relay", "budget": 120.0},
    ///            {"id": "edge", "budget": 60.0, "poll_cost": 2.0}],
    ///  "links": [{"from": "origin", "to": "relay"},
    ///            {"from": "relay", "to": "edge", "elements": [0, 1]}]}
    /// ```
    ///
    /// Parsed with the offline-safe [`crate::json`] reader, so spec
    /// files work without serde.
    pub fn from_spec(doc: &Json, n_elements: usize) -> Result<Topology> {
        let mut builder = Topology::builder();
        let nodes = doc
            .get("nodes")
            .ok_or_else(|| CoreError::InvalidConfig("topology spec: missing `nodes`".into()))?
            .as_arr("nodes")?;
        for node in nodes {
            let id = node
                .get("id")
                .ok_or_else(|| CoreError::InvalidConfig("topology spec: node lacks `id`".into()))?
                .as_str("node id")?;
            let is_source = match node.get("role") {
                Some(role) => role.as_str("node role")? == "source",
                None => false,
            };
            if is_source {
                builder = builder.source(id);
            } else {
                let budget = node
                    .get("budget")
                    .ok_or_else(|| {
                        CoreError::InvalidConfig(format!(
                            "topology spec: tier `{id}` lacks `budget`"
                        ))
                    })?
                    .as_f64("tier budget")?;
                let poll_cost = match node.get("poll_cost") {
                    Some(v) => v.as_f64("tier poll_cost")?,
                    None => 1.0,
                };
                builder = builder.tier_with_cost(id, budget, poll_cost);
            }
        }
        let links = doc
            .get("links")
            .ok_or_else(|| CoreError::InvalidConfig("topology spec: missing `links`".into()))?
            .as_arr("links")?;
        for link in links {
            let from = link
                .get("from")
                .ok_or_else(|| CoreError::InvalidConfig("topology spec: link lacks `from`".into()))?
                .as_str("link from")?;
            let to = link
                .get("to")
                .ok_or_else(|| CoreError::InvalidConfig("topology spec: link lacks `to`".into()))?
                .as_str("link to")?;
            match link.get("elements") {
                None | Some(Json::Null) => builder = builder.link(from, to),
                Some(subset) => {
                    let items = subset.as_arr("link elements")?;
                    let mut elements = Vec::with_capacity(items.len());
                    for item in items {
                        elements.push(item.as_usize("link element")?);
                    }
                    builder = builder.link_subset(from, to, elements);
                }
            }
        }
        builder.build(n_elements)
    }

    /// Parse a topology spec document from text.
    pub fn from_spec_str(text: &str, n_elements: usize) -> Result<Topology> {
        Topology::from_spec(&Json::parse(text)?, n_elements)
    }

    /// Deterministic hand-rolled spec JSON (round-trips through
    /// [`from_spec`](Self::from_spec)); works under the offline serde
    /// stub.
    pub fn to_spec_json(&self) -> String {
        let mut s = String::with_capacity(128 + 64 * (self.names.len() + self.links.len()));
        s.push_str("{\"nodes\":[");
        for (n, name) in self.names.iter().enumerate() {
            if n > 0 {
                s.push(',');
            }
            s.push_str("{\"id\":\"");
            s.push_str(name);
            if n == 0 {
                s.push_str("\",\"role\":\"source\"}");
            } else {
                s.push_str("\",\"budget\":");
                s.push_str(&format!("{}", self.budgets[n]));
                s.push_str(",\"poll_cost\":");
                s.push_str(&format!("{}", self.poll_costs[n]));
                s.push('}');
            }
        }
        s.push_str("],\"links\":[");
        for (l, link) in self.links.iter().enumerate() {
            if l > 0 {
                s.push(',');
            }
            s.push_str("{\"from\":\"");
            s.push_str(&self.names[link.from]);
            s.push_str("\",\"to\":\"");
            s.push_str(&self.names[link.to]);
            s.push('"');
            if let Some(subset) = &link.elements {
                s.push_str(",\"elements\":[");
                for (k, i) in subset.iter().enumerate() {
                    if k > 0 {
                        s.push(',');
                    }
                    s.push_str(&i.to_string());
                }
                s.push(']');
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// Parse a [`Problem`] from the offline-safe JSON reader — the inline
/// `"problem"` block of a topology spec file. Mirrors the serde schema
/// (`change_rates`, `access_probs`, optional `sizes`/`costs`,
/// `bandwidth`) but never touches serde, so `freshen solve --topology`
/// works under the offline stub.
pub fn problem_from_json(doc: &Json) -> Result<Problem> {
    fn vec_field(doc: &Json, key: &str) -> Result<Option<Vec<f64>>> {
        match doc.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(value) => {
                let items = value.as_arr(key)?;
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(item.as_f64(key)?);
                }
                Ok(Some(out))
            }
        }
    }
    let rates = vec_field(doc, "change_rates")?
        .ok_or_else(|| CoreError::InvalidConfig("problem spec: missing `change_rates`".into()))?;
    let probs = vec_field(doc, "access_probs")?
        .ok_or_else(|| CoreError::InvalidConfig("problem spec: missing `access_probs`".into()))?;
    let bandwidth = doc
        .get("bandwidth")
        .ok_or_else(|| CoreError::InvalidConfig("problem spec: missing `bandwidth`".into()))?
        .as_f64("bandwidth")?;
    let mut builder: ProblemBuilder = Problem::builder()
        .change_rates(rates)
        .access_weights(probs)
        .bandwidth(bandwidth);
    if let Some(sizes) = vec_field(doc, "sizes")? {
        builder = builder.sizes(sizes);
    }
    if let Some(costs) = vec_field(doc, "costs")? {
        builder = builder.costs(costs);
    }
    builder.build()
}

/// Incremental [`Topology`] construction; all validation happens in
/// [`build`](Self::build).
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    source: Option<String>,
    tiers: Vec<(String, f64, f64)>,
    links: Vec<(String, String, Option<Vec<usize>>)>,
}

impl TopologyBuilder {
    /// Declare the source node (exactly one required).
    pub fn source(mut self, name: impl Into<String>) -> Self {
        // A second call is recorded as a duplicate-name error at build.
        let name = name.into();
        match &self.source {
            None => self.source = Some(name),
            Some(_) => self.tiers.push((name, f64::NAN, f64::NAN)),
        }
        self
    }

    /// Declare a tier (relay or edge mirror) with its bandwidth budget.
    pub fn tier(self, name: impl Into<String>, budget: f64) -> Self {
        self.tier_with_cost(name, budget, 1.0)
    }

    /// Declare a tier with a bandwidth budget and a per-poll cost scale
    /// (multiplies the problem's cost column for this tier's polls).
    pub fn tier_with_cost(mut self, name: impl Into<String>, budget: f64, poll_cost: f64) -> Self {
        self.tiers.push((name.into(), budget, poll_cost));
        self
    }

    /// Declare a full-catalog link: `to` polls `from` for every element.
    pub fn link(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.links.push((from.into(), to.into(), None));
        self
    }

    /// Declare a link carrying only `elements` (deduplicated and
    /// sorted at build).
    pub fn link_subset(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        elements: Vec<usize>,
    ) -> Self {
        self.links.push((from.into(), to.into(), Some(elements)));
        self
    }

    /// Validate and freeze. `n_elements` is the element-universe size
    /// the subsets are checked against (the paired [`Problem`]'s
    /// length).
    pub fn build(self, n_elements: usize) -> Result<Topology> {
        let bad = |msg: String| Err(CoreError::InvalidConfig(format!("topology: {msg}")));
        if n_elements == 0 {
            return bad("element universe is empty".into());
        }
        let source = match self.source {
            Some(s) => s,
            None => return bad("no source node declared".into()),
        };
        if self.tiers.is_empty() {
            return bad("at least one tier besides the source is required".into());
        }

        let mut names = vec![source];
        let mut budgets = vec![0.0f64];
        let mut poll_costs = vec![0.0f64];
        for (name, budget, poll_cost) in self.tiers {
            names.push(name);
            budgets.push(budget);
            poll_costs.push(poll_cost);
        }
        for (n, name) in names.iter().enumerate() {
            if name.is_empty() {
                return bad("node names must be non-empty".into());
            }
            if names[..n].contains(name) {
                return bad(format!("duplicate node name `{name}`"));
            }
        }
        for n in 1..names.len() {
            if !budgets[n].is_finite() || budgets[n] <= 0.0 {
                return bad(format!(
                    "budget for tier `{}` must be positive and finite, got {}",
                    names[n], budgets[n]
                ));
            }
            if !poll_costs[n].is_finite() || poll_costs[n] < 0.0 {
                return bad(format!(
                    "poll cost for tier `{}` must be non-negative and finite, got {}",
                    names[n], poll_costs[n]
                ));
            }
        }

        let mut links = Vec::with_capacity(self.links.len());
        for (from_name, to_name, elements) in self.links {
            let from = match names.iter().position(|n| *n == from_name) {
                Some(ix) => ix,
                None => return bad(format!("link endpoint `{from_name}` is not a node")),
            };
            let to = match names.iter().position(|n| *n == to_name) {
                Some(ix) => ix,
                None => return bad(format!("link endpoint `{to_name}` is not a node")),
            };
            if from == to {
                return bad(format!("self-loop on `{from_name}`"));
            }
            if to == 0 {
                return bad("the source never polls: no links may enter it".into());
            }
            if links.iter().any(|l: &Link| l.from == from && l.to == to) {
                return bad(format!("duplicate link `{from_name}`→`{to_name}`"));
            }
            let elements = match elements {
                None => None,
                Some(mut subset) => {
                    if subset.is_empty() {
                        return bad(format!(
                            "link `{from_name}`→`{to_name}` carries an empty element set"
                        ));
                    }
                    subset.sort_unstable();
                    subset.dedup();
                    if let Some(&out_of_range) = subset.iter().find(|&&i| i >= n_elements) {
                        return bad(format!(
                            "link `{from_name}`→`{to_name}` names element {out_of_range} \
                             but the problem has {n_elements}"
                        ));
                    }
                    Some(subset)
                }
            };
            links.push(Link { from, to, elements });
        }

        let node_count = names.len();
        let mut incoming = vec![Vec::new(); node_count];
        let mut outgoing = vec![Vec::new(); node_count];
        for (l, link) in links.iter().enumerate() {
            incoming[link.to].push(l);
            outgoing[link.from].push(l);
        }
        for n in 1..node_count {
            if incoming[n].is_empty() {
                return bad(format!("tier `{}` has no incoming link (orphan)", names[n]));
            }
        }

        // Kahn's algorithm: a complete order proves acyclicity, and —
        // since every non-source node has an incoming link — also
        // reachability from the source.
        let mut indegree: Vec<usize> = incoming.iter().map(Vec::len).collect();
        let mut queue = vec![0usize];
        let mut order = Vec::with_capacity(node_count);
        while let Some(node) = queue.pop() {
            order.push(node);
            for &l in &outgoing[node] {
                let to = links[l].to;
                indegree[to] -= 1;
                if indegree[to] == 0 {
                    queue.push(to);
                }
            }
        }
        if order.len() != node_count {
            let stuck: Vec<&str> = (0..node_count)
                .filter(|&n| indegree[n] > 0)
                .map(|n| names[n].as_str())
                .collect();
            return bad(format!("cycle through {{{}}}", stuck.join(", ")));
        }

        // A link may only carry elements its upstream can actually
        // serve: propagate mirrored sets in topological order.
        let mut mirrored = vec![vec![false; n_elements]; node_count];
        mirrored[0] = vec![true; n_elements];
        for &node in &order {
            if node == 0 {
                continue;
            }
            for &l in &incoming[node] {
                let link = &links[l];
                match &link.elements {
                    None => {
                        if let Some(i) = mirrored[link.from][..n_elements].iter().position(|&m| !m)
                        {
                            return bad(format!(
                                "link `{}`→`{}` carries element {i} which `{}` \
                                 does not mirror",
                                names[link.from], names[link.to], names[link.from]
                            ));
                        }
                    }
                    Some(subset) => {
                        for &i in subset {
                            if !mirrored[link.from][i] {
                                return bad(format!(
                                    "link `{}`→`{}` carries element {i} which `{}` \
                                     does not mirror",
                                    names[link.from], names[link.to], names[link.from]
                                ));
                            }
                        }
                    }
                }
                match &link.elements {
                    None => mirrored[node].iter_mut().for_each(|m| *m = true),
                    Some(subset) => {
                        for &i in subset {
                            mirrored[node][i] = true;
                        }
                    }
                }
            }
        }

        let sinks: Vec<usize> = (0..node_count)
            .filter(|&n| outgoing[n].is_empty())
            .collect();
        debug_assert!(!sinks.is_empty(), "a finite DAG always has a sink");

        Ok(Topology {
            names,
            budgets,
            poll_costs,
            links,
            incoming,
            outgoing,
            order,
            sinks,
            n_elements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freshness::steady_state_freshness;

    fn chain(relay_budget: f64, edge_budget: f64, n: usize) -> Topology {
        Topology::builder()
            .source("origin")
            .tier("relay", relay_budget)
            .tier("edge", edge_budget)
            .link("origin", "relay")
            .link("relay", "edge")
            .build(n)
            .unwrap()
    }

    fn toy_problem(n: usize) -> Problem {
        Problem::builder()
            .change_rates((0..n).map(|i| 1.0 + i as f64).collect())
            .access_weights(vec![1.0; n])
            .bandwidth(4.0)
            .build()
            .unwrap()
    }

    #[test]
    fn chain_structure_is_validated() {
        let topo = chain(4.0, 2.0, 3);
        assert_eq!(topo.node_count(), 3);
        assert_eq!(topo.sinks(), &[2]);
        assert_eq!(topo.order()[0], 0);
        assert!(topo.is_tree());
        assert_eq!(topo.incoming(2), &[1]);
        assert_eq!(topo.budgets(), &[0.0, 4.0, 2.0]);
    }

    #[test]
    fn cycles_are_rejected() {
        let err = Topology::builder()
            .source("s")
            .tier("a", 1.0)
            .tier("b", 1.0)
            .link("s", "a")
            .link("a", "b")
            .link("b", "a")
            .build(2)
            .unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn orphans_and_dangling_endpoints_are_rejected() {
        let orphan = Topology::builder()
            .source("s")
            .tier("a", 1.0)
            .tier("lost", 1.0)
            .link("s", "a")
            .build(2)
            .unwrap_err();
        assert!(orphan.to_string().contains("orphan"), "{orphan}");

        let dangling = Topology::builder()
            .source("s")
            .tier("a", 1.0)
            .link("s", "ghost")
            .build(2)
            .unwrap_err();
        assert!(dangling.to_string().contains("ghost"), "{dangling}");
    }

    #[test]
    fn budget_and_name_validation() {
        for bad_budget in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(Topology::builder()
                .source("s")
                .tier("a", bad_budget)
                .link("s", "a")
                .build(2)
                .is_err());
        }
        let dup = Topology::builder()
            .source("s")
            .tier("s", 1.0)
            .link("s", "s")
            .build(1)
            .unwrap_err();
        assert!(dup.to_string().contains("duplicate node name"), "{dup}");
        let into_source = Topology::builder()
            .source("s")
            .tier("a", 1.0)
            .link("s", "a")
            .link("a", "s")
            .build(1)
            .unwrap_err();
        assert!(into_source.to_string().contains("source"), "{into_source}");
    }

    #[test]
    fn subset_must_be_mirrored_upstream() {
        // The relay only mirrors {0}; the edge asking it for {0, 1}
        // is a spec inconsistency.
        let err = Topology::builder()
            .source("s")
            .tier("relay", 2.0)
            .tier("edge", 1.0)
            .link_subset("s", "relay", vec![0])
            .link_subset("relay", "edge", vec![0, 1])
            .build(2)
            .unwrap_err();
        assert!(err.to_string().contains("does not mirror"), "{err}");

        let out_of_range = Topology::builder()
            .source("s")
            .tier("a", 1.0)
            .link_subset("s", "a", vec![7])
            .build(3)
            .unwrap_err();
        assert!(
            out_of_range.to_string().contains("element 7"),
            "{out_of_range}"
        );
    }

    #[test]
    fn single_hop_freshness_is_the_policy_law() {
        let n = 3;
        let problem = toy_problem(n);
        let topo = Topology::builder()
            .source("s")
            .tier("edge", 4.0)
            .link("s", "edge")
            .build(n)
            .unwrap();
        let mut schedule = TieredSchedule::zero(&topo);
        schedule.link_freqs[0] = vec![1.0, 2.0, 0.5];
        for policy in [SyncPolicy::FixedOrder, SyncPolicy::Poisson] {
            let fresh = topo.node_freshness(&problem, &schedule, policy).unwrap();
            for (i, &got) in fresh[1].iter().enumerate() {
                let expect = policy.freshness(problem.change_rates()[i], schedule.link_freqs[0][i]);
                assert!((got - expect).abs() < 1e-15, "{policy:?} {i}");
            }
        }
    }

    #[test]
    fn two_hop_freshness_is_the_product_of_hop_factors() {
        let n = 4;
        let problem = toy_problem(n);
        let topo = chain(4.0, 2.0, n);
        let mut schedule = TieredSchedule::zero(&topo);
        schedule.link_freqs[0] = vec![2.0, 1.0, 0.5, 3.0];
        schedule.link_freqs[1] = vec![1.0, 0.25, 2.0, 0.125];
        let fresh = topo
            .node_freshness(&problem, &schedule, SyncPolicy::FixedOrder)
            .unwrap();
        for (i, &got) in fresh[2].iter().enumerate() {
            let lam = problem.change_rates()[i];
            let expect = steady_state_freshness(lam, schedule.link_freqs[0][i])
                * steady_state_freshness(lam, schedule.link_freqs[1][i]);
            assert!(
                (got - expect).abs() < 1e-15,
                "element {i}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn parallel_relays_compose_by_inclusion_exclusion() {
        let n = 2;
        let problem = toy_problem(n);
        let topo = Topology::builder()
            .source("s")
            .tier("r1", 2.0)
            .tier("r2", 2.0)
            .tier("edge", 2.0)
            .link("s", "r1")
            .link("s", "r2")
            .link("r1", "edge")
            .link("r2", "edge")
            .build(n)
            .unwrap();
        assert!(!topo.is_tree());
        let mut schedule = TieredSchedule::zero(&topo);
        schedule.link_freqs[0] = vec![2.0, 1.0];
        schedule.link_freqs[1] = vec![0.5, 2.0];
        schedule.link_freqs[2] = vec![1.0, 1.0];
        schedule.link_freqs[3] = vec![1.0, 0.5];
        let policy = SyncPolicy::Poisson;
        let fresh = topo.node_freshness(&problem, &schedule, policy).unwrap();
        for (i, &got) in fresh[3].iter().enumerate() {
            let lam = problem.change_rates()[i];
            let via1 = policy.freshness(lam, schedule.link_freqs[0][i])
                * policy.freshness(lam, schedule.link_freqs[2][i]);
            let via2 = policy.freshness(lam, schedule.link_freqs[1][i])
                * policy.freshness(lam, schedule.link_freqs[3][i]);
            let expect = 1.0 - (1.0 - via1) * (1.0 - via2);
            assert!((got - expect).abs() < 1e-15, "element {i}");
        }
    }

    #[test]
    fn uncarried_elements_score_zero_at_the_edge() {
        let n = 3;
        let problem = toy_problem(n);
        let topo = Topology::builder()
            .source("s")
            .tier("edge", 2.0)
            .link_subset("s", "edge", vec![0, 2])
            .build(n)
            .unwrap();
        let mut schedule = TieredSchedule::zero(&topo);
        schedule.link_freqs[0] = vec![1.0, 0.0, 1.0];
        let fresh = topo
            .node_freshness(&problem, &schedule, SyncPolicy::FixedOrder)
            .unwrap();
        assert!(fresh[1][0] > 0.0 && fresh[1][2] > 0.0);
        assert_eq!(fresh[1][1], 0.0);
        // Scheduling a frequency on the uncarried element is rejected.
        schedule.link_freqs[0][1] = 0.5;
        assert!(schedule.validate(&topo).is_err());
    }

    #[test]
    fn spend_and_budget_checks() {
        let n = 2;
        let problem = Problem::builder()
            .change_rates(vec![1.0, 2.0])
            .access_weights(vec![1.0, 1.0])
            .sizes(vec![1.0, 3.0])
            .bandwidth(4.0)
            .build()
            .unwrap();
        let topo = chain(4.0, 2.0, n);
        let mut schedule = TieredSchedule::zero(&topo);
        schedule.link_freqs[0] = vec![1.0, 1.0]; // relay spend: 1 + 3 = 4
        schedule.link_freqs[1] = vec![2.0, 0.0]; // edge spend: 2
        let spend = topo.node_spend(&problem, &schedule).unwrap();
        assert_eq!(spend, vec![0.0, 4.0, 2.0]);
        assert!(topo.check_budgets(&problem, &schedule, 1e-9).is_ok());
        schedule.link_freqs[1][0] = 2.5;
        assert!(topo.check_budgets(&problem, &schedule, 1e-9).is_err());
    }

    #[test]
    fn spec_round_trips() {
        let topo = Topology::builder()
            .source("origin")
            .tier("relay", 120.0)
            .tier_with_cost("edge", 60.0, 2.0)
            .link("origin", "relay")
            .link_subset("relay", "edge", vec![0, 1])
            .build(3)
            .unwrap();
        let json = topo.to_spec_json();
        let parsed = Topology::from_spec_str(&json, 3).unwrap();
        assert_eq!(parsed, topo);
    }

    #[test]
    fn spec_errors_are_named() {
        for (why, doc) in [
            ("missing nodes", r#"{"links": []}"#),
            ("missing links", r#"{"nodes": []}"#),
            (
                "missing budget",
                r#"{"nodes": [{"id": "s", "role": "source"}, {"id": "a"}],
                    "links": [{"from": "s", "to": "a"}]}"#,
            ),
        ] {
            assert!(Topology::from_spec_str(doc, 2).is_err(), "{why}");
        }
    }

    #[test]
    fn problem_from_json_round_trip() {
        let doc = Json::parse(
            r#"{"change_rates": [1.0, 2.0], "access_probs": [0.5, 0.5],
                "sizes": [1.0, 2.0], "bandwidth": 3.0}"#,
        )
        .unwrap();
        let problem = problem_from_json(&doc).unwrap();
        assert_eq!(problem.len(), 2);
        assert_eq!(problem.bandwidth(), 3.0);
        assert_eq!(problem.sizes(), &[1.0, 2.0]);
        assert!(problem_from_json(&Json::parse(r#"{"bandwidth": 1.0}"#).unwrap()).is_err());
    }

    #[test]
    fn edge_pf_averages_over_sinks() {
        let n = 1;
        let problem = Problem::builder()
            .change_rates(vec![1.0])
            .access_probs(vec![1.0])
            .bandwidth(2.0)
            .build()
            .unwrap();
        let topo = Topology::builder()
            .source("s")
            .tier("e1", 1.0)
            .tier("e2", 1.0)
            .link("s", "e1")
            .link("s", "e2")
            .build(n)
            .unwrap();
        assert_eq!(topo.sinks(), &[1, 2]);
        let mut schedule = TieredSchedule::zero(&topo);
        schedule.link_freqs[0] = vec![1.0];
        schedule.link_freqs[1] = vec![2.0];
        let policy = SyncPolicy::FixedOrder;
        let pf = topo.edge_pf(&problem, &schedule, policy).unwrap();
        let expect = 0.5 * (policy.freshness(1.0, 1.0) + policy.freshness(1.0, 2.0));
        assert!((pf - expect).abs() < 1e-15);
    }
}
