//! Machine-checkable optimality certificates (the paper's Appendix,
//! Eq. 5) for solver output.
//!
//! The water-filling optimum has an *exact* first-order certificate: a
//! feasible allocation `f` maximizes perceived freshness iff there is a
//! multiplier `μ ≥ 0` such that
//!
//! * **stationarity on the support** — every funded element equalizes
//!   marginal value per unit bandwidth: `pᵢ·g(fᵢ; λᵢ) = μ·sᵢ` whenever
//!   `fᵢ > 0`;
//! * **complementary slackness off it** — unfunded elements cannot beat
//!   the waterline even at zero: `pᵢ·g(0⁺; λᵢ) = pᵢ/λᵢ ≤ μ·sᵢ`;
//! * **budget exhaustion** — `Σ sᵢ·fᵢ = B` (the marginal value is
//!   strictly positive, so leftover bandwidth is always a bug);
//! * **non-negativity** — `fᵢ ≥ 0`.
//!
//! [`SolutionAudit`] checks all four against a [`Problem`] +
//! [`Solution`] pair and returns a machine-readable [`AuditReport`]:
//! every breach becomes an [`AuditViolation`] with the element, the
//! measured value, and the limit it broke. Because the certificate is a
//! property of the *output*, the same checker audits the exact Lagrange
//! solver, the two-level sharded solve, the generic projected-gradient
//! NLP, and any heuristic's expanded allocation — no access to solver
//! internals required.
//!
//! Static elements (`λ ≤ 1e-12`, the solver's own threshold) and
//! zero-interest elements are excluded from the marginal conditions:
//! their optimal allocation is zero, and funding them at all is reported
//! as its own violation kind.

use crate::error::{CoreError, Result};
use crate::numeric::NeumaierSum;
use crate::policy::SyncPolicy;
use crate::problem::{Problem, Solution};

/// Change rates at or below this are "static" — the same cutoff the
/// Lagrange solver uses to drop elements from the active set.
const STATIC_RATE: f64 = 1e-12;

/// What a certificate condition breach looks like, mechanically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// `|Σ sᵢfᵢ − B|` exceeded the budget tolerance.
    BudgetResidual,
    /// A frequency was negative.
    NegativeFrequency,
    /// A frequency was NaN or infinite.
    NonFiniteFrequency,
    /// A funded element's marginal value strayed from the waterline.
    MarginalSpread,
    /// An unfunded element could profitably be funded
    /// (`pᵢ/λᵢ > μ·sᵢ` beyond tolerance).
    Slackness,
    /// A static (never-changing) element received bandwidth.
    StaticFunded,
}

impl ViolationKind {
    /// Stable machine-readable name (used in the JSON report).
    pub fn name(&self) -> &'static str {
        match self {
            ViolationKind::BudgetResidual => "budget-residual",
            ViolationKind::NegativeFrequency => "negative-frequency",
            ViolationKind::NonFiniteFrequency => "non-finite-frequency",
            ViolationKind::MarginalSpread => "marginal-spread",
            ViolationKind::Slackness => "slackness",
            ViolationKind::StaticFunded => "static-funded",
        }
    }
}

/// One condition breach: which condition, where, by how much.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditViolation {
    /// Which certificate condition broke.
    pub kind: ViolationKind,
    /// Offending element, when the condition is per-element.
    pub element: Option<usize>,
    /// Measured value (residual, spread, excess — kind-dependent).
    pub value: f64,
    /// The tolerance it exceeded.
    pub limit: f64,
}

/// The result of checking one allocation against the KKT certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Problem size.
    pub elements: usize,
    /// Elements with a meaningful bandwidth share (`fᵢsᵢ` above the
    /// support threshold).
    pub funded: usize,
    /// The budget `B`.
    pub budget: f64,
    /// `|Σ sᵢfᵢ − B|` (compensated summation).
    pub budget_residual: f64,
    /// The multiplier `μ` the conditions were checked against.
    pub multiplier: f64,
    /// True when the solution carried no multiplier and `μ` was
    /// estimated as the mean funded marginal value.
    pub multiplier_estimated: bool,
    /// Max relative deviation `|pᵢ·g(fᵢ)/sᵢ − μ| / μ` over the support.
    pub max_spread: f64,
    /// Max relative excess `(pᵢ/(λᵢsᵢ) − μ)/μ` over unfunded elements
    /// (0 when every unfunded element is priced out, as it should be).
    pub max_slack_excess: f64,
    /// Smallest frequency in the allocation.
    pub min_frequency: f64,
    /// The per-poll cost weight `γ` the conditions were checked against
    /// (0 for the classic cost-blind certificate).
    pub cost_weight: f64,
    /// Every condition breach found.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// True iff no condition was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Hand-rolled deterministic JSON (the machine-readable form the CLI
    /// and CI consume).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + 96 * self.violations.len());
        s.push_str("{\"elements\":");
        s.push_str(&self.elements.to_string());
        s.push_str(",\"funded\":");
        s.push_str(&self.funded.to_string());
        s.push_str(",\"budget\":");
        s.push_str(&fmt_f64(self.budget));
        s.push_str(",\"budget_residual\":");
        s.push_str(&fmt_f64(self.budget_residual));
        s.push_str(",\"multiplier\":");
        s.push_str(&fmt_f64(self.multiplier));
        s.push_str(",\"multiplier_estimated\":");
        s.push_str(if self.multiplier_estimated {
            "true"
        } else {
            "false"
        });
        s.push_str(",\"max_spread\":");
        s.push_str(&fmt_f64(self.max_spread));
        s.push_str(",\"max_slack_excess\":");
        s.push_str(&fmt_f64(self.max_slack_excess));
        s.push_str(",\"min_frequency\":");
        s.push_str(&fmt_f64(self.min_frequency));
        s.push_str(",\"cost_weight\":");
        s.push_str(&fmt_f64(self.cost_weight));
        s.push_str(",\"clean\":");
        s.push_str(if self.is_clean() { "true" } else { "false" });
        s.push_str(",\"violations\":[");
        for (k, v) in self.violations.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str("{\"kind\":\"");
            s.push_str(v.kind.name());
            s.push_str("\",\"element\":");
            match v.element {
                Some(i) => s.push_str(&i.to_string()),
                None => s.push_str("null"),
            }
            s.push_str(",\"value\":");
            s.push_str(&fmt_f64(v.value));
            s.push_str(",\"limit\":");
            s.push_str(&fmt_f64(v.limit));
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// JSON-safe float formatting: finite values via Rust's shortest
/// round-trip display, non-finite as `null`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The KKT certificate checker. Tolerances are public fields so callers
/// can tighten or loosen per solver class; [`SolutionAudit::default`] is
/// the strict profile the exact solvers must satisfy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolutionAudit {
    /// Budget residual allowance, relative to `B`.
    pub budget_tol: f64,
    /// Allowed relative deviation of funded marginals from `μ`.
    pub spread_tol: f64,
    /// Allowed relative excess of an unfunded element's zero-frequency
    /// marginal over `μ`.
    pub slack_tol: f64,
    /// An element is "funded" when its bandwidth share `fᵢsᵢ` exceeds
    /// this fraction of the budget.
    pub support_tol: f64,
}

impl Default for SolutionAudit {
    /// The strict profile: spread ≤ 1e-6, budget residual ≤ 1e-8·B.
    fn default() -> Self {
        SolutionAudit {
            budget_tol: 1e-8,
            spread_tol: 1e-6,
            slack_tol: 1e-6,
            support_tol: 1e-9,
        }
    }
}

impl SolutionAudit {
    /// The relaxed profile for generic iterative NLP output (the
    /// projected-gradient solver converges in objective value long
    /// before its marginals equalize to exact-solver precision).
    pub fn relaxed() -> Self {
        SolutionAudit {
            budget_tol: 1e-6,
            spread_tol: 5e-2,
            slack_tol: 5e-2,
            support_tol: 1e-7,
        }
    }

    /// Check `solution` against the classic cost-blind certificate for
    /// `problem` under `policy`. Errors only on structural mismatch
    /// (wrong length); condition breaches are *reported*, not raised.
    pub fn check(
        &self,
        problem: &Problem,
        solution: &Solution,
        policy: SyncPolicy,
    ) -> Result<AuditReport> {
        self.check_with_cost(problem, solution, policy, 0.0)
    }

    /// Check `solution` against the *cost-adjusted* certificate: the
    /// optimum of `max PF − γ·Σcᵢfᵢ  s.t.  Σsᵢfᵢ ≤ B` satisfies, for
    /// some `μ ≥ 0`,
    ///
    /// * stationarity on the support: `pᵢ·g(fᵢ) = μ·sᵢ + γ·cᵢ`;
    /// * slackness off it: `pᵢ/λᵢ ≤ μ·sᵢ + γ·cᵢ`;
    /// * either the budget binds (`μ > 0`, `Σsᵢfᵢ = B`) or the optimum
    ///   is interior (`μ = 0`, `Σsᵢfᵢ ≤ B`) — with `γ > 0` the marginal
    ///   value of bandwidth can legitimately hit zero before the budget
    ///   is spent, so `Some(0.0)` is a genuine multiplier there, not a
    ///   missing one.
    ///
    /// `check_with_cost(…, 0.0)` is exactly the classic certificate
    /// ([`check`](Self::check) delegates here).
    pub fn check_with_cost(
        &self,
        problem: &Problem,
        solution: &Solution,
        policy: SyncPolicy,
        cost_weight: f64,
    ) -> Result<AuditReport> {
        let n = problem.len();
        let freqs = &solution.frequencies;
        if freqs.len() != n {
            return Err(CoreError::LengthMismatch {
                what: "audited frequencies",
                expected: n,
                actual: freqs.len(),
            });
        }
        if !cost_weight.is_finite() || cost_weight < 0.0 {
            return Err(CoreError::InvalidValue {
                what: "audit cost weight",
                index: None,
                value: cost_weight,
            });
        }
        let gamma = cost_weight;
        let budget = problem.bandwidth();
        let p = problem.access_probs();
        let lam = problem.change_rates();
        let sizes = problem.sizes();
        // Per-poll cost of element `i`; 1.0 when no cost column is set.
        // Only consulted when γ > 0, so cost-blind audits never pay for
        // the lookup.
        let cost = |i: usize| -> f64 {
            match problem.poll_costs() {
                Some(c) => c[i],
                None => 1.0,
            }
        };

        let mut violations = Vec::new();
        let mut used = NeumaierSum::default();
        let mut min_frequency = f64::INFINITY;
        for (i, &f) in freqs.iter().enumerate() {
            if !f.is_finite() {
                violations.push(AuditViolation {
                    kind: ViolationKind::NonFiniteFrequency,
                    element: Some(i),
                    value: f,
                    limit: 0.0,
                });
                continue;
            }
            min_frequency = min_frequency.min(f);
            if f < 0.0 {
                violations.push(AuditViolation {
                    kind: ViolationKind::NegativeFrequency,
                    element: Some(i),
                    value: f,
                    limit: 0.0,
                });
            }
            used.add(f * sizes[i]);
        }
        // A cost-aware interior optimum (declared μ = 0) legitimately
        // under-spends; there the budget condition is one-sided.
        let interior = gamma > 0.0 && solution.multiplier == Some(0.0);
        let budget_residual = if interior {
            (used.total() - budget).max(0.0)
        } else {
            (used.total() - budget).abs()
        };
        if budget_residual > self.budget_tol * budget {
            violations.push(AuditViolation {
                kind: ViolationKind::BudgetResidual,
                element: None,
                value: budget_residual,
                limit: self.budget_tol * budget,
            });
        }

        // Classify the support and collect funded marginal values
        // `pᵢ·g(fᵢ)/sᵢ` (per unit of bandwidth, so sized problems audit
        // identically to uniform ones). With γ > 0 the per-poll levy is
        // subtracted first: the *bandwidth* marginal on the support is
        // `(pᵢ·g(fᵢ) − γ·cᵢ)/sᵢ = μ`.
        let support_share = self.support_tol * budget;
        let mut funded = Vec::new();
        for i in 0..n {
            let f = freqs[i];
            if !f.is_finite() || f < 0.0 {
                continue;
            }
            let share = f * sizes[i];
            if share <= support_share {
                continue;
            }
            if lam[i] <= STATIC_RATE {
                violations.push(AuditViolation {
                    kind: ViolationKind::StaticFunded,
                    element: Some(i),
                    value: share,
                    limit: support_share,
                });
                continue;
            }
            let levy = if gamma > 0.0 { gamma * cost(i) } else { 0.0 };
            funded.push((i, (p[i] * policy.gradient(lam[i], f) - levy) / sizes[i]));
        }

        let mu_floor_ok = |mu: f64| mu > 0.0 || (gamma > 0.0 && mu == 0.0);
        let (multiplier, multiplier_estimated) = match solution.multiplier {
            Some(mu) if mu.is_finite() && mu_floor_ok(mu) => (mu, false),
            _ => {
                let mean = if funded.is_empty() {
                    0.0
                } else {
                    funded.iter().map(|&(_, v)| v).sum::<f64>() / funded.len() as f64
                };
                (mean, true)
            }
        };

        // Stationarity on the support: the cost-adjusted bandwidth
        // marginal must sit on the waterline. Spreads are normalized by
        // the full per-element threshold `τᵢ = μ·sᵢ + γ·cᵢ` (in marginal
        // units, `μ + γ·cᵢ/sᵢ`) so an interior optimum (μ = 0, γ > 0)
        // still yields a well-defined relative deviation.
        let mut max_spread = 0.0f64;
        for &(i, v) in &funded {
            let tau = multiplier
                + if gamma > 0.0 {
                    gamma * cost(i) / sizes[i]
                } else {
                    0.0
                };
            if tau <= 0.0 {
                continue;
            }
            let spread = (v - multiplier).abs() / tau;
            max_spread = max_spread.max(spread);
            if spread > self.spread_tol {
                violations.push(AuditViolation {
                    kind: ViolationKind::MarginalSpread,
                    element: Some(i),
                    value: spread,
                    limit: self.spread_tol,
                });
            }
        }

        // Complementary slackness off the support: the marginal at
        // `f → 0⁺` is `pᵢ/λᵢ` per refresh, `pᵢ/(λᵢsᵢ)` per unit of
        // bandwidth, and must not beat the waterline plus the per-poll
        // levy.
        let mut max_slack_excess = 0.0f64;
        for i in 0..n {
            let f = freqs[i];
            if !f.is_finite() || f < 0.0 || f * sizes[i] > support_share {
                continue;
            }
            if lam[i] <= STATIC_RATE || p[i] <= 0.0 {
                continue;
            }
            let tau = multiplier
                + if gamma > 0.0 {
                    gamma * cost(i) / sizes[i]
                } else {
                    0.0
                };
            if tau <= 0.0 {
                continue;
            }
            let at_zero = p[i] / (lam[i] * sizes[i]);
            let excess = (at_zero - tau) / tau;
            if excess > 0.0 {
                max_slack_excess = max_slack_excess.max(excess);
            }
            if excess > self.slack_tol {
                violations.push(AuditViolation {
                    kind: ViolationKind::Slackness,
                    element: Some(i),
                    value: excess,
                    limit: self.slack_tol,
                });
            }
        }

        Ok(AuditReport {
            elements: n,
            funded: funded.len(),
            budget,
            budget_residual,
            multiplier,
            multiplier_estimated,
            max_spread,
            max_slack_excess,
            min_frequency: if min_frequency.is_finite() {
                min_frequency
            } else {
                0.0
            },
            cost_weight: gamma,
            violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two identical elements: by symmetry the even split is the exact
    /// optimum, so the strict certificate must come back clean.
    #[test]
    fn symmetric_optimum_is_certified_clean() {
        let problem = Problem::builder()
            .change_rates(vec![2.0, 2.0])
            .access_probs(vec![0.5, 0.5])
            .bandwidth(3.0)
            .build()
            .unwrap();
        let solution = Solution::evaluate(&problem, vec![1.5, 1.5]);
        let report = SolutionAudit::default()
            .check(&problem, &solution, SyncPolicy::FixedOrder)
            .unwrap();
        assert!(report.is_clean(), "{}", report.to_json());
        assert_eq!(report.funded, 2);
        assert!(report.multiplier_estimated, "no μ in an evaluated solution");
        assert!(report.max_spread <= 1e-12, "identical marginals");
    }

    /// Poisson policy has a closed-form water-filling solution
    /// `fᵢ = √(pᵢλᵢ/(μsᵢ)) − λᵢ`: construct it exactly for a chosen μ
    /// and verify the checker accepts it with the declared multiplier.
    #[test]
    fn closed_form_poisson_optimum_is_certified() {
        let (p, lam) = (vec![0.6f64, 0.4], vec![1.0f64, 2.0]);
        let mu = 0.05f64;
        let freqs: Vec<f64> = p
            .iter()
            .zip(&lam)
            .map(|(&pi, &li)| (pi * li / mu).sqrt() - li)
            .collect();
        let budget: f64 = freqs.iter().sum();
        let problem = Problem::builder()
            .change_rates(lam)
            .access_probs(p)
            .bandwidth(budget)
            .build()
            .unwrap();
        let mut solution = Solution::evaluate_with_policy(&problem, freqs, SyncPolicy::Poisson);
        solution.multiplier = Some(mu);
        let report = SolutionAudit::default()
            .check(&problem, &solution, SyncPolicy::Poisson)
            .unwrap();
        assert!(report.is_clean(), "{}", report.to_json());
        assert!(!report.multiplier_estimated);
    }

    #[test]
    fn unbalanced_marginals_are_flagged() {
        let problem = Problem::builder()
            .change_rates(vec![2.0, 2.0])
            .access_probs(vec![0.5, 0.5])
            .bandwidth(3.0)
            .build()
            .unwrap();
        // Feasible but lopsided: budget holds, stationarity breaks.
        let solution = Solution::evaluate(&problem, vec![2.5, 0.5]);
        let report = SolutionAudit::default()
            .check(&problem, &solution, SyncPolicy::FixedOrder)
            .unwrap();
        assert!(!report.is_clean());
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::MarginalSpread));
        assert!(report.max_spread > 0.1);
    }

    #[test]
    fn starving_a_profitable_element_breaks_slackness() {
        let problem = Problem::builder()
            .change_rates(vec![2.0, 2.0])
            .access_probs(vec![0.5, 0.5])
            .bandwidth(3.0)
            .build()
            .unwrap();
        // All budget on element 0: element 1's zero-frequency marginal
        // p/λ beats the (deeply waterlogged) waterline.
        let solution = Solution::evaluate(&problem, vec![3.0, 0.0]);
        let report = SolutionAudit::default()
            .check(&problem, &solution, SyncPolicy::FixedOrder)
            .unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::Slackness));
        assert!(report.max_slack_excess > 0.0);
    }

    #[test]
    fn budget_leak_and_negativity_are_flagged() {
        let problem = Problem::builder()
            .change_rates(vec![1.0, 1.0])
            .access_probs(vec![0.5, 0.5])
            .bandwidth(2.0)
            .build()
            .unwrap();
        // Built by hand: a corrupt allocation like this can't even be
        // scored (evaluate asserts non-negativity) — but it can be
        // audited.
        let solution = Solution {
            frequencies: vec![1.5, -0.2],
            perceived_freshness: 0.0,
            general_freshness: 0.0,
            bandwidth_used: 1.3,
            multiplier: None,
            cost_multiplier: None,
            iterations: 0,
        };
        let report = SolutionAudit::default()
            .check(&problem, &solution, SyncPolicy::FixedOrder)
            .unwrap();
        let kinds: Vec<ViolationKind> = report.violations.iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&ViolationKind::BudgetResidual));
        assert!(kinds.contains(&ViolationKind::NegativeFrequency));
        assert!(report.min_frequency < 0.0);
    }

    #[test]
    fn funded_static_element_is_flagged() {
        let problem = Problem::builder()
            .change_rates(vec![0.0, 1.0])
            .access_probs(vec![0.5, 0.5])
            .bandwidth(2.0)
            .build()
            .unwrap();
        let solution = Solution::evaluate(&problem, vec![1.0, 1.0]);
        let report = SolutionAudit::default()
            .check(&problem, &solution, SyncPolicy::FixedOrder)
            .unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::StaticFunded && v.element == Some(0)));
    }

    #[test]
    fn length_mismatch_is_a_structural_error() {
        let problem = Problem::builder()
            .change_rates(vec![1.0, 1.0])
            .access_probs(vec![0.5, 0.5])
            .bandwidth(2.0)
            .build()
            .unwrap();
        let other = Problem::builder()
            .change_rates(vec![1.0])
            .access_probs(vec![1.0])
            .bandwidth(1.0)
            .build()
            .unwrap();
        let solution = Solution::evaluate(&other, vec![1.0]);
        assert!(SolutionAudit::default()
            .check(&problem, &solution, SyncPolicy::FixedOrder)
            .is_err());
    }

    /// Poisson policy closed form with a per-poll levy: stationarity is
    /// `p·λ/(λ+f)² = μ·s + γ·c`, so `f = √(pλ/(μs+γc)) − λ`. Build that
    /// allocation exactly and check the cost-adjusted certificate.
    #[test]
    fn cost_adjusted_closed_form_is_certified() {
        let (p, lam) = (vec![0.6f64, 0.4], vec![1.0f64, 2.0]);
        let costs = vec![2.0f64, 0.5];
        let (mu, gamma) = (0.03f64, 0.02f64);
        let freqs: Vec<f64> = p
            .iter()
            .zip(&lam)
            .zip(&costs)
            .map(|((&pi, &li), &ci)| (pi * li / (mu + gamma * ci)).sqrt() - li)
            .collect();
        let budget: f64 = freqs.iter().sum();
        let problem = Problem::builder()
            .change_rates(lam)
            .access_probs(p)
            .costs(costs)
            .bandwidth(budget)
            .build()
            .unwrap();
        let mut solution = Solution::evaluate_with_policy(&problem, freqs, SyncPolicy::Poisson);
        solution.multiplier = Some(mu);
        let report = SolutionAudit::default()
            .check_with_cost(&problem, &solution, SyncPolicy::Poisson, gamma)
            .unwrap();
        assert!(report.is_clean(), "{}", report.to_json());
        assert_eq!(report.cost_weight, gamma);
        // The same allocation fails the cost-blind certificate: the raw
        // marginals p·g/s are *not* equalized once polls are priced.
        let blind = SolutionAudit::default()
            .check(&problem, &solution, SyncPolicy::Poisson)
            .unwrap();
        assert!(!blind.is_clean(), "cost-blind audit must flag the spread");
    }

    /// An interior cost-aware optimum (μ = 0): stationarity against the
    /// levy alone, budget one-sided.
    #[test]
    fn interior_cost_optimum_may_underspend() {
        let (p, lam) = (vec![0.5f64, 0.5], vec![1.0f64, 1.0]);
        let gamma = 0.1f64;
        // μ = 0: f = √(pλ/(γc)) − λ with c = 1.
        let freqs: Vec<f64> = p
            .iter()
            .zip(&lam)
            .map(|(&pi, &li)| (pi * li / gamma).sqrt() - li)
            .collect();
        let used: f64 = freqs.iter().sum();
        let problem = Problem::builder()
            .change_rates(lam)
            .access_probs(p)
            .bandwidth(used * 2.0) // twice what the interior optimum needs
            .build()
            .unwrap();
        let mut solution = Solution::evaluate_with_policy(&problem, freqs, SyncPolicy::Poisson);
        solution.multiplier = Some(0.0);
        let report = SolutionAudit::default()
            .check_with_cost(&problem, &solution, SyncPolicy::Poisson, gamma)
            .unwrap();
        assert!(report.is_clean(), "{}", report.to_json());
        assert!(!report.multiplier_estimated, "Some(0.0) is genuine here");
        // The cost-blind certificate would call the unspent budget a bug.
        let blind = SolutionAudit::default()
            .check(&problem, &solution, SyncPolicy::Poisson)
            .unwrap();
        assert!(blind
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::BudgetResidual));
    }

    #[test]
    fn cost_audit_rejects_bad_weight() {
        let problem = Problem::builder()
            .change_rates(vec![1.0])
            .access_probs(vec![1.0])
            .bandwidth(1.0)
            .build()
            .unwrap();
        let solution = Solution::evaluate(&problem, vec![1.0]);
        for bad in [-0.5, f64::NAN, f64::INFINITY] {
            assert!(SolutionAudit::default()
                .check_with_cost(&problem, &solution, SyncPolicy::FixedOrder, bad)
                .is_err());
        }
    }

    #[test]
    fn report_json_is_machine_readable() {
        let problem = Problem::builder()
            .change_rates(vec![2.0, 2.0])
            .access_probs(vec![0.5, 0.5])
            .bandwidth(3.0)
            .build()
            .unwrap();
        let solution = Solution::evaluate(&problem, vec![2.5, 0.5]);
        let report = SolutionAudit::default()
            .check(&problem, &solution, SyncPolicy::FixedOrder)
            .unwrap();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("\"kind\":\"marginal-spread\""));
        // Deterministic: same input, same bytes.
        assert_eq!(json, report.to_json());
    }
}
