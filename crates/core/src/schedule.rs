//! Turning refresh frequencies into a concrete Fixed-Order timetable.
//!
//! The solvers output *frequencies* `fᵢ` (refreshes per period). The mirror
//! needs actual poll instants. Following the paper (§2.2), we use the
//! **Fixed Order** synchronization-order policy of Cho & Garcia-Molina:
//! every object is refreshed at a fixed interval `1/fᵢ`, in the same
//! repeating order. Each element is given a deterministic *phase* so the
//! refresh load spreads evenly over the period instead of bursting at
//! `t = 0` — with identical phases a 250 000-refresh schedule would demand
//! all its bandwidth in the first instant.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

/// One scheduled synchronization operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncOp {
    /// When the refresh fires (periods).
    pub time: f64,
    /// Which element to refresh.
    pub element: usize,
}

/// A Fixed-Order synchronization schedule over a finite horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedOrderSchedule {
    ops: Vec<SyncOp>,
    horizon: f64,
}

/// Deterministic per-element phase in `[0, 1)`: a Weyl sequence
/// (`i·φ mod 1` with `φ` the golden-ratio conjugate), which spreads phases
/// near-uniformly without randomness.
#[inline]
pub fn element_phase(element: usize) -> f64 {
    const GOLDEN: f64 = 0.618_033_988_749_894_9;
    (element as f64 * GOLDEN).fract()
}

impl FixedOrderSchedule {
    /// Materialize the schedule for `freqs` over `[0, horizon)`.
    ///
    /// Element `i` with `fᵢ > 0` is refreshed at times
    /// `(k + φᵢ)/fᵢ` for `k = 0, 1, …` below the horizon, where `φᵢ` is the
    /// deterministic phase of [`element_phase`]. Elements with `fᵢ = 0` are
    /// never refreshed. Ops are sorted by time.
    ///
    /// # Panics
    /// Panics when `horizon` is non-positive or any frequency is negative
    /// or non-finite.
    pub fn build(freqs: &[f64], horizon: f64) -> Self {
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "horizon must be positive"
        );
        let mut ops = Vec::new();
        for (i, &f) in freqs.iter().enumerate() {
            assert!(f.is_finite() && f >= 0.0, "frequency {i} invalid: {f}");
            if f <= 0.0 {
                continue;
            }
            let interval = 1.0 / f;
            let mut t = element_phase(i) * interval;
            while t < horizon {
                ops.push(SyncOp {
                    time: t,
                    element: i,
                });
                t += interval;
            }
        }
        ops.sort_by(|a, b| a.time.partial_cmp(&b.time).unwrap_or(Ordering::Equal));
        FixedOrderSchedule { ops, horizon }
    }

    /// The scheduled operations, in time order.
    pub fn ops(&self) -> &[SyncOp] {
        &self.ops
    }

    /// Schedule horizon (periods).
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Total number of refresh operations in the horizon.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no element is ever refreshed.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Refresh counts per element (length = `n`).
    pub fn counts(&self, n: usize) -> Vec<usize> {
        let mut c = vec![0usize; n];
        for op in &self.ops {
            c[op.element] += 1;
        }
        c
    }

    /// Maximum number of ops falling in any window of length `window` —
    /// a burstiness measure; phased schedules keep this near
    /// `⌈Σfᵢ·window⌉`.
    pub fn peak_ops_in_window(&self, window: f64) -> usize {
        assert!(window > 0.0);
        let mut peak = 0usize;
        let mut lo = 0usize;
        for hi in 0..self.ops.len() {
            while self.ops[hi].time - self.ops[lo].time > window {
                lo += 1;
            }
            peak = peak.max(hi - lo + 1);
        }
        peak
    }
}

/// Streaming Fixed-Order schedule: yields [`SyncOp`]s in time order without
/// materializing the whole horizon. For a 500 000-element mirror simulated
/// over many periods, materializing is wasteful; this merges the per-element
/// arithmetic sequences with a binary heap (`O(log N)` per op).
#[derive(Debug)]
pub struct ScheduleStream {
    heap: BinaryHeap<HeapEntry>,
    intervals: Vec<f64>,
    horizon: f64,
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    time: f64,
    element: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on time; tie-break on element for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.element.cmp(&self.element))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl ScheduleStream {
    /// Create a stream over `[0, horizon)` for the given frequencies.
    ///
    /// # Panics
    /// Panics on non-positive horizon or invalid frequencies.
    pub fn new(freqs: &[f64], horizon: f64) -> Self {
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "horizon must be positive"
        );
        let mut heap = BinaryHeap::with_capacity(freqs.len());
        let mut intervals = vec![f64::INFINITY; freqs.len()];
        for (i, &f) in freqs.iter().enumerate() {
            assert!(f.is_finite() && f >= 0.0, "frequency {i} invalid: {f}");
            if f > 0.0 {
                let interval = 1.0 / f;
                intervals[i] = interval;
                let first = element_phase(i) * interval;
                if first < horizon {
                    heap.push(HeapEntry {
                        time: first,
                        element: i,
                    });
                }
            }
        }
        ScheduleStream {
            heap,
            intervals,
            horizon,
        }
    }
}

impl Iterator for ScheduleStream {
    type Item = SyncOp;

    fn next(&mut self) -> Option<SyncOp> {
        let top = self.heap.pop()?;
        let next_t = top.time + self.intervals[top.element];
        if next_t < self.horizon {
            self.heap.push(HeapEntry {
                time: next_t,
                element: top.element,
            });
        }
        Some(SyncOp {
            time: top.time,
            element: top.element,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_in_unit_interval_and_distinct() {
        let phases: Vec<f64> = (0..100).map(element_phase).collect();
        assert!(phases.iter().all(|p| (0.0..1.0).contains(p)));
        // Weyl sequence: all distinct for small n.
        for i in 0..phases.len() {
            for j in (i + 1)..phases.len() {
                assert!((phases[i] - phases[j]).abs() > 1e-9);
            }
        }
    }

    #[test]
    fn build_counts_match_frequencies() {
        let freqs = [2.0, 0.0, 5.0];
        let sched = FixedOrderSchedule::build(&freqs, 10.0);
        let counts = sched.counts(3);
        // With phase in [0,1) intervals, count is either floor or ceil of f·H.
        assert!((19..=21).contains(&counts[0]), "{counts:?}");
        assert_eq!(counts[1], 0);
        assert!((49..=51).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn build_ops_sorted_and_in_horizon() {
        let freqs = [1.3, 2.7, 0.4];
        let sched = FixedOrderSchedule::build(&freqs, 7.0);
        let ops = sched.ops();
        assert!(!ops.is_empty());
        for w in ops.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(ops.iter().all(|o| (0.0..7.0).contains(&o.time)));
    }

    #[test]
    fn build_intervals_are_fixed() {
        let freqs = [4.0];
        let sched = FixedOrderSchedule::build(&freqs, 5.0);
        let times: Vec<f64> = sched.ops().iter().map(|o| o.time).collect();
        for w in times.windows(2) {
            assert!((w[1] - w[0] - 0.25).abs() < 1e-12, "fixed 1/f spacing");
        }
    }

    #[test]
    fn zero_frequency_never_synced() {
        let sched = FixedOrderSchedule::build(&[0.0, 0.0], 100.0);
        assert!(sched.is_empty());
        assert_eq!(sched.len(), 0);
    }

    #[test]
    fn phased_schedule_is_not_bursty() {
        // 100 elements each at 1 sync/period: a phase-less schedule would
        // put all 100 ops at t=0; phased, any 0.1-window holds ~10.
        let freqs = vec![1.0; 100];
        let sched = FixedOrderSchedule::build(&freqs, 1.0);
        let peak = sched.peak_ops_in_window(0.1);
        assert!(peak <= 20, "peak window load {peak} too bursty");
    }

    #[test]
    fn stream_matches_materialized() {
        let freqs = [2.0, 3.5, 0.0, 1.1];
        let sched = FixedOrderSchedule::build(&freqs, 4.0);
        let streamed: Vec<SyncOp> = ScheduleStream::new(&freqs, 4.0).collect();
        assert_eq!(sched.len(), streamed.len());
        for (a, b) in sched.ops().iter().zip(&streamed) {
            assert!((a.time - b.time).abs() < 1e-12);
            assert_eq!(a.element, b.element);
        }
    }

    #[test]
    fn stream_is_time_ordered() {
        let freqs = [0.3, 9.0, 2.2];
        let mut last = -1.0;
        for op in ScheduleStream::new(&freqs, 3.0) {
            assert!(op.time >= last);
            last = op.time;
        }
    }

    #[test]
    fn stream_empty_for_zero_freqs() {
        assert_eq!(ScheduleStream::new(&[0.0; 5], 10.0).count(), 0);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn build_rejects_bad_horizon() {
        FixedOrderSchedule::build(&[1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn build_rejects_negative_frequency() {
        FixedOrderSchedule::build(&[-1.0], 1.0);
    }
}
