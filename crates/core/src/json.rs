//! Minimal hand-rolled JSON reader for spec files.
//!
//! Spec files (fleet tenants, tier topologies) must parse without serde
//! so the CLI keeps working under the offline serde stub — the same
//! constraint that shaped the zero-dependency snapshot codec. This is a
//! strict recursive-descent parser over the JSON grammar (objects,
//! arrays, strings with escapes, numbers, booleans, null); anything
//! malformed is a [`CoreError::InvalidConfig`] naming the byte offset,
//! never a panic.
//!
//! The reader started life inside `freshen-fleet`; it moved here when
//! the topology spec needed the same offline-safe parsing one layer
//! lower ([`crate::topology`]). `freshen_fleet::json` re-exports this
//! module, so existing fleet callers are unaffected.

use crate::error::{CoreError, Result};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as `f64`).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys rejected at parse).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.fail("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's members, or an error naming `what`.
    pub fn as_obj(&self, what: &str) -> Result<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Ok(members),
            _ => Err(type_err(what, "an object")),
        }
    }

    /// The array's elements, or an error naming `what`.
    pub fn as_arr(&self, what: &str) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(type_err(what, "an array")),
        }
    }

    /// The string value, or an error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(type_err(what, "a string")),
        }
    }

    /// The number value, or an error naming `what`.
    pub fn as_f64(&self, what: &str) -> Result<f64> {
        match self {
            Json::Num(v) => Ok(*v),
            _ => Err(type_err(what, "a number")),
        }
    }

    /// The number as a non-negative integer, or an error naming `what`.
    pub fn as_usize(&self, what: &str) -> Result<usize> {
        let v = self.as_f64(what)?;
        if v.fract() == 0.0 && v >= 0.0 && v <= u32::MAX as f64 {
            Ok(v as usize)
        } else {
            Err(type_err(what, "a non-negative integer"))
        }
    }

    /// The number as a `u64` seed, or an error naming `what`.
    pub fn as_u64(&self, what: &str) -> Result<u64> {
        let v = self.as_f64(what)?;
        if v.fract() == 0.0 && (0.0..9.007_199_254_740_992e15).contains(&v) {
            Ok(v as u64)
        } else {
            Err(type_err(what, "a non-negative integer"))
        }
    }
}

fn type_err(what: &str, wanted: &str) -> CoreError {
    CoreError::InvalidConfig(format!("spec: {what} must be {wanted}"))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, msg: &str) -> CoreError {
        CoreError::InvalidConfig(format!("spec: {msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("non-UTF-8 number"))?;
        let v: f64 = text
            .parse()
            .map_err(|_| self.fail(&format!("unparseable number `{text}`")))?;
        if !v.is_finite() {
            return Err(self.fail("number out of range"));
        }
        Ok(Json::Num(v))
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| self.fail("non-UTF-8 string"));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0C),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.fail("bad \\u escape"))?;
                            // Basic-plane only; surrogate pairs are not
                            // worth the complexity for spec files.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.fail("\\u escape is not a scalar value"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            self.pos += 4;
                        }
                        _ => return Err(self.fail("bad escape in string")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.fail("control character in string")),
                Some(&b) => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.fail("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.eat(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.fail(&format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.fail("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_grammar() {
        let doc = r#"{"a": 1, "b": [true, false, null], "c": {"d": "x\ny", "e": -2.5e2}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64("a").unwrap(), 1.0);
        let arr = v.get("b").unwrap().as_arr("b").unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0], Json::Bool(true));
        assert_eq!(arr[2], Json::Null);
        let c = v.get("c").unwrap();
        assert_eq!(c.get("d").unwrap().as_str("d").unwrap(), "x\ny");
        assert_eq!(c.get("e").unwrap().as_f64("e").unwrap(), -250.0);
    }

    #[test]
    fn decodes_escapes() {
        let v = Json::parse(r#""a\"b\\cA\t""#).unwrap();
        assert_eq!(v.as_str("s").unwrap(), "a\"b\\cA\t");
    }

    #[test]
    fn rejects_malformed_documents() {
        for (why, doc) in [
            ("empty", ""),
            ("trailing", "{} x"),
            ("bare word", "frue"),
            ("unterminated string", "\"abc"),
            ("bad escape", r#""\q""#),
            ("unterminated array", "[1, 2"),
            ("missing colon", "{\"a\" 1}"),
            ("duplicate key", "{\"a\": 1, \"a\": 2}"),
            ("control char", "\"a\nb\""),
            ("bad number", "1.2.3"),
            ("lone surrogate", r#""\ud800""#),
        ] {
            let err = Json::parse(doc);
            assert!(err.is_err(), "accepted {why}: {doc}");
            assert!(
                err.unwrap_err().to_string().contains("spec"),
                "{why} error names the spec"
            );
        }
    }

    #[test]
    fn integer_accessors_bound_check() {
        let v = Json::parse("{\"n\": 3, \"half\": 1.5, \"neg\": -1}").unwrap();
        assert_eq!(v.get("n").unwrap().as_usize("n").unwrap(), 3);
        assert_eq!(v.get("n").unwrap().as_u64("n").unwrap(), 3);
        assert!(v.get("half").unwrap().as_usize("half").is_err());
        assert!(v.get("neg").unwrap().as_u64("neg").is_err());
        assert!(v.get("n").unwrap().as_str("n").is_err());
    }
}
