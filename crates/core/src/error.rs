//! Error types shared across the freshening model.

use std::fmt;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised while constructing or validating freshening problems.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A vector input (rates, probabilities, sizes, frequencies) had the
    /// wrong length relative to the number of elements.
    LengthMismatch {
        /// What the vector holds (for the message).
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A numeric input was not finite or violated a sign constraint.
    InvalidValue {
        /// What the value is (for the message).
        what: &'static str,
        /// Index of the offending entry, if it came from a vector.
        index: Option<usize>,
        /// The offending value.
        value: f64,
    },
    /// Access probabilities must sum to 1 (within tolerance).
    ProbabilityNotNormalized {
        /// The observed sum.
        sum: f64,
    },
    /// The problem had no elements.
    Empty,
    /// A solver failed to converge within its iteration budget.
    NoConvergence {
        /// Which solver or routine gave up.
        routine: &'static str,
        /// Iterations spent before giving up.
        iterations: usize,
        /// Residual when giving up.
        residual: f64,
    },
    /// A requested configuration is inconsistent (e.g. zero partitions).
    InvalidConfig(String),
    /// An internal invariant was violated at runtime (e.g. the simulator
    /// selected an event stream that turned out to have nothing pending).
    /// Surfacing this as an error instead of panicking lets long batch
    /// runs fail one scenario and keep going.
    Inconsistent {
        /// Which subsystem detected the violation.
        routine: &'static str,
        /// The invariant that did not hold.
        invariant: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::LengthMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "{what}: expected length {expected}, got {actual}"
            ),
            CoreError::InvalidValue { what, index, value } => match index {
                Some(i) => write!(f, "{what}[{i}] has invalid value {value}"),
                None => write!(f, "{what} has invalid value {value}"),
            },
            CoreError::ProbabilityNotNormalized { sum } => write!(
                f,
                "access probabilities must sum to 1, got {sum}"
            ),
            CoreError::Empty => write!(f, "problem has no elements"),
            CoreError::NoConvergence {
                routine,
                iterations,
                residual,
            } => write!(
                f,
                "{routine} failed to converge after {iterations} iterations (residual {residual:.3e})"
            ),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Inconsistent { routine, invariant } => {
                write!(f, "{routine}: internal invariant violated: {invariant}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = CoreError::LengthMismatch {
            what: "access_probs",
            expected: 5,
            actual: 3,
        };
        assert_eq!(e.to_string(), "access_probs: expected length 5, got 3");
    }

    #[test]
    fn display_invalid_value_with_index() {
        let e = CoreError::InvalidValue {
            what: "change_rates",
            index: Some(2),
            value: -1.0,
        };
        assert_eq!(e.to_string(), "change_rates[2] has invalid value -1");
    }

    #[test]
    fn display_invalid_value_without_index() {
        let e = CoreError::InvalidValue {
            what: "bandwidth",
            index: None,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("bandwidth"));
    }

    #[test]
    fn display_not_normalized() {
        let e = CoreError::ProbabilityNotNormalized { sum: 0.5 };
        assert!(e.to_string().contains("0.5"));
    }

    #[test]
    fn display_no_convergence() {
        let e = CoreError::NoConvergence {
            routine: "lagrange-bisection",
            iterations: 200,
            residual: 1e-3,
        };
        let s = e.to_string();
        assert!(s.contains("lagrange-bisection") && s.contains("200"));
    }

    #[test]
    fn display_inconsistent() {
        let e = CoreError::Inconsistent {
            routine: "simulation",
            invariant: "tu finite implies update pending",
        };
        let s = e.to_string();
        assert!(s.contains("simulation") && s.contains("update pending"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::Empty);
    }
}
