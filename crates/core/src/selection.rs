//! Mirror-content selection under a space budget (paper §7, future work).
//!
//! The paper closes by observing that many objects receive *no* refresh
//! bandwidth at the optimum, "get arbitrarily out of date and therefore
//! become much less valuable", and suggests profiles "could influence which
//! objects we include in the mirror when the mirror is smaller than the
//! database". This module implements that extension.
//!
//! Model: the mirror can hold only a subset `S` of the database, subject to
//! `Σ_{i∈S} sᵢ ≤ capacity`. An access to an object *not* in the mirror
//! never sees a fresh copy (it must be forwarded or fails), so the
//! achievable perceived freshness is `Σ_{i∈S} pᵢ·F̄(λᵢ, fᵢ)` with the
//! refresh budget spent only on mirrored objects.
//!
//! [`select_greedy`] ranks objects by *freshness density* — expected
//! perceived-freshness contribution per unit of space at a reference
//! refresh rate — and fills the capacity greedily (the classic knapsack
//! density heuristic). [`select_with_solver`] then iterates: select, let
//! the caller's solver allocate bandwidth over the selected subset, re-rank
//! by *realized* contribution, and re-select until the chosen set is stable
//! (or `max_rounds` is hit).

use crate::freshness::steady_state_freshness;
use crate::problem::Problem;

/// The outcome of a selection round.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionResult {
    /// Indices of objects to keep in the mirror, sorted ascending.
    pub selected: Vec<usize>,
    /// Space used, `Σ sᵢ` over the selection.
    pub space_used: f64,
    /// Rounds of select/solve iteration performed (1 for plain greedy).
    pub rounds: usize,
}

/// Greedy density selection: rank by `pᵢ·F̄(λᵢ, f₀/sᵢ) / sᵢ` where the
/// reference per-object refresh rate `f₀ = bandwidth / capacity` spreads
/// the sync budget over the space budget, then take objects in rank order
/// while they fit.
///
/// # Panics
/// Panics when `capacity` is not positive.
pub fn select_greedy(problem: &Problem, capacity: f64) -> SelectionResult {
    assert!(capacity > 0.0, "capacity must be positive");
    let f0 = (problem.bandwidth() / capacity).max(1e-12);
    let scores: Vec<f64> = problem
        .elements()
        .map(|e| e.access_prob * steady_state_freshness(e.change_rate, f0 / e.size) / e.size)
        .collect();
    select_by_scores(problem, capacity, &scores, 1)
}

/// Iterated selection with a caller-supplied bandwidth allocator.
///
/// `solve` receives the subproblem restricted to the current selection
/// (access probabilities renormalized, full refresh bandwidth) and must
/// return per-element refresh frequencies for that subproblem. Objects are
/// then re-ranked by realized contribution `pᵢ·F̄(λᵢ, fᵢ)/sᵢ` (unselected
/// objects keep their greedy score) and re-selected. Stops when the
/// selection is stable or after `max_rounds`.
///
/// # Panics
/// Panics when `capacity` is not positive or `max_rounds` is zero.
pub fn select_with_solver(
    problem: &Problem,
    capacity: f64,
    max_rounds: usize,
    mut solve: impl FnMut(&Problem) -> Vec<f64>,
) -> SelectionResult {
    assert!(capacity > 0.0, "capacity must be positive");
    assert!(max_rounds > 0, "max_rounds must be at least 1");
    let mut result = select_greedy(problem, capacity);
    let f0 = (problem.bandwidth() / capacity).max(1e-12);
    let mut scores: Vec<f64> = problem
        .elements()
        .map(|e| e.access_prob * steady_state_freshness(e.change_rate, f0 / e.size) / e.size)
        .collect();

    for round in 2..=max_rounds {
        let sub = match problem.restrict_to(&result.selected, problem.bandwidth()) {
            Ok(s) => s,
            Err(_) => break, // selection has zero aggregate interest; stop
        };
        let freqs = solve(&sub);
        assert_eq!(
            freqs.len(),
            result.selected.len(),
            "solver returned wrong number of frequencies"
        );
        for (k, &i) in result.selected.iter().enumerate() {
            let e = problem.element(i);
            scores[i] = e.access_prob * steady_state_freshness(e.change_rate, freqs[k]) / e.size;
        }
        let next = select_by_scores(problem, capacity, &scores, round);
        if next.selected == result.selected {
            return SelectionResult {
                rounds: round,
                ..result
            };
        }
        result = next;
    }
    result
}

fn select_by_scores(
    problem: &Problem,
    capacity: f64,
    scores: &[f64],
    rounds: usize,
) -> SelectionResult {
    let mut order: Vec<usize> = (0..problem.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let sizes = problem.sizes();
    let mut selected = Vec::new();
    let mut used = 0.0;
    for i in order {
        if used + sizes[i] <= capacity {
            selected.push(i);
            used += sizes[i];
        }
    }
    selected.sort_unstable();
    SelectionResult {
        selected,
        space_used: used,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_problem() -> Problem {
        // Element 0: hot & slow-changing (prime candidate).
        // Element 1: hot & fast-changing.
        // Element 2: cold & slow-changing.
        // Element 3: cold & fast-changing (worst candidate).
        Problem::builder()
            .change_rates(vec![0.5, 8.0, 0.5, 8.0])
            .access_probs(vec![0.45, 0.45, 0.05, 0.05])
            .bandwidth(4.0)
            .build()
            .unwrap()
    }

    #[test]
    fn greedy_fills_capacity_with_hot_objects() {
        let p = skewed_problem();
        let sel = select_greedy(&p, 2.0);
        assert_eq!(sel.selected, vec![0, 1], "keeps the two hot objects");
        assert_eq!(sel.space_used, 2.0);
        assert_eq!(sel.rounds, 1);
    }

    #[test]
    fn greedy_respects_capacity_exactly() {
        let p = skewed_problem();
        let sel = select_greedy(&p, 3.0);
        assert_eq!(sel.selected.len(), 3);
        assert!(sel.space_used <= 3.0);
    }

    #[test]
    fn greedy_full_capacity_selects_everything() {
        let p = skewed_problem();
        let sel = select_greedy(&p, 100.0);
        assert_eq!(sel.selected, vec![0, 1, 2, 3]);
    }

    #[test]
    fn greedy_accounts_for_size_density() {
        // Equal interest/volatility, but element 1 is 10x larger: density
        // favors the small object when only it fits.
        let p = Problem::builder()
            .change_rates(vec![1.0, 1.0])
            .access_probs(vec![0.5, 0.5])
            .sizes(vec![1.0, 10.0])
            .bandwidth(2.0)
            .build()
            .unwrap();
        let sel = select_greedy(&p, 5.0);
        assert_eq!(sel.selected, vec![0]);
    }

    #[test]
    fn iterated_selection_converges_and_is_feasible() {
        let p = skewed_problem();
        // A crude "solver": spread bandwidth evenly over the subset.
        let sel = select_with_solver(&p, 2.0, 5, |sub| {
            vec![sub.bandwidth() / sub.len() as f64; sub.len()]
        });
        assert!(sel.space_used <= 2.0);
        assert!(!sel.selected.is_empty());
        assert!(sel.rounds >= 2, "at least one refinement round runs");
    }

    #[test]
    fn iterated_selection_can_drop_unrefreshable_hot_object() {
        // Element 1 is hot but so volatile that, with a realistic allocator
        // that refuses to waste bandwidth on it, its realized contribution
        // collapses and a cooler-but-keepable object wins its slot.
        let p = Problem::builder()
            .change_rates(vec![0.5, 500.0, 0.6, 8.0])
            .access_probs(vec![0.4, 0.35, 0.2, 0.05])
            .bandwidth(2.0)
            .build()
            .unwrap();
        let sel = select_with_solver(&p, 2.0, 5, |sub| {
            // Allocator that starves anything changing faster than 100/period.
            let mut f = vec![0.0; sub.len()];
            let keep: Vec<usize> = (0..sub.len())
                .filter(|&i| sub.change_rates()[i] < 100.0)
                .collect();
            if !keep.is_empty() {
                let share = sub.bandwidth() / keep.len() as f64;
                for i in keep {
                    f[i] = share;
                }
            }
            f
        });
        assert!(
            sel.selected.contains(&0) && sel.selected.contains(&2),
            "volatile hot object displaced by keepable ones: {:?}",
            sel.selected
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_bad_capacity() {
        select_greedy(&skewed_problem(), 0.0);
    }
}
