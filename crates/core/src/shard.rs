//! Sharded views of a [`Problem`] for two-level parallel solves.
//!
//! A [`ShardedProblem`] partitions a problem's element indices into `K`
//! **contiguous-after-sort** shards: indices are sorted once by the
//! zero-frequency marginal value density `pᵢ / (λᵢ·sᵢ)` (descending — the
//! order in which water-filling activates elements) and then cut into `K`
//! equal contiguous runs. Each shard is therefore a band of elements with
//! similar marginal value, which keeps per-shard inner solves balanced.
//!
//! **Why sharding preserves optimality.** The Core Problem couples
//! elements only through the single bandwidth constraint `Σ sᵢfᵢ = B`.
//! At the optimum, KKT stationarity gives every active element the same
//! multiplier: `pᵢ·F̄'(λᵢ, fᵢ) = μ·sᵢ`. Fix any partition of the elements
//! into shards and give each shard `k` the budget `Bₖ(μ) = Σ_{i∈k} sᵢfᵢ(μ)`
//! it consumes at a common multiplier `μ`; then each per-shard
//! water-filling subproblem is solved by exactly the global solution's
//! frequencies, because the per-element stationarity condition mentions
//! only that shared `μ`. An outer bisection on `μ` (equivalently, on the
//! per-shard budget multipliers it induces) with per-shard inner solves
//! run in parallel therefore reproduces the global solve — for *any*
//! partition. The sort is purely a load-balancing choice, not a
//! correctness requirement; `freshen-solver`'s `solve_sharded` exploits
//! this and the property tests assert PF parity against the global solve.

use crate::problem::Problem;
use crate::soa::{ColumnsRef, PackedColumns};

/// Rate below which an element is effectively static (matches the
/// solver's treatment: such elements stay fresh without bandwidth and are
/// ordered last).
const STATIC_RATE: f64 = 1e-12;

/// A partition of a problem's indices into `K` contiguous-after-sort
/// shards. Borrows the problem; building one costs a single `O(n log n)`
/// sort plus one gather of the `p`/`λ`/`s` columns into sorted order, so
/// each shard's data is a **true contiguous sub-slice** of the packed
/// columns ([`shard_columns`](Self::shard_columns)) — per-shard inner
/// solves stream memory linearly instead of chasing the permutation.
#[derive(Debug, Clone)]
pub struct ShardedProblem<'a> {
    problem: &'a Problem,
    columns: PackedColumns,
    bounds: Vec<usize>,
}

impl<'a> ShardedProblem<'a> {
    /// Shard `problem` into `shards` contiguous runs (clamped to
    /// `1..=n`). Every element index appears in exactly one shard.
    pub fn new(problem: &'a Problem, shards: usize) -> Self {
        let n = problem.len();
        let k = shards.clamp(1, n.max(1));
        let p = problem.access_probs();
        let lam = problem.change_rates();
        let s = problem.sizes();
        // Zero-frequency marginal value density: the water-filling entry
        // order. Static elements sort last (they never receive bandwidth).
        let keys: Vec<f64> = (0..n)
            .map(|i| {
                if lam[i] > STATIC_RATE {
                    p[i] / (lam[i] * s[i])
                } else {
                    -1.0
                }
            })
            .collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            keys[b]
                .partial_cmp(&keys[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let run = n.div_ceil(k).max(1);
        let bounds: Vec<usize> = (0..=k).map(|j| (j * run).min(n)).collect();
        ShardedProblem {
            columns: PackedColumns::gather(problem, &order),
            problem,
            bounds,
        }
    }

    /// The problem this view shards.
    pub fn problem(&self) -> &Problem {
        self.problem
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The element indices of shard `j` (sorted by descending marginal
    /// value density, ties by index).
    ///
    /// # Panics
    /// Panics when `j >= num_shards()`.
    pub fn shard(&self, j: usize) -> &[usize] {
        &self.columns.ids()[self.bounds[j]..self.bounds[j + 1]]
    }

    /// The packed `p`/`λ`/`s` data of shard `j` as true contiguous
    /// sub-slices of the sorted columns.
    ///
    /// # Panics
    /// Panics when `j >= num_shards()`.
    pub fn shard_columns(&self, j: usize) -> ColumnsRef<'_> {
        self.columns.slice(self.bounds[j]..self.bounds[j + 1])
    }

    /// Iterate over all shards in order.
    pub fn shards(&self) -> impl Iterator<Item = &[usize]> + '_ {
        (0..self.num_shards()).map(|j| self.shard(j))
    }

    /// The full sorted index order (the concatenation of all shards).
    pub fn order(&self) -> &[usize] {
        self.columns.ids()
    }

    /// The full sorted columns (the concatenation of all shards'
    /// sub-slices).
    pub fn columns(&self) -> &PackedColumns {
        &self.columns
    }

    /// Half-open packed extent `[bounds[j], bounds[j+1])` of shard `j`
    /// within [`columns`](Self::columns).
    pub fn shard_range(&self, j: usize) -> std::ops::Range<usize> {
        self.bounds[j]..self.bounds[j + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(n: usize) -> Problem {
        let rates: Vec<f64> = (0..n).map(|i| 0.5 + (i % 13) as f64).collect();
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        Problem::builder()
            .change_rates(rates)
            .access_weights(weights)
            .bandwidth(n as f64 / 3.0)
            .build()
            .unwrap()
    }

    #[test]
    fn shards_cover_every_index_exactly_once() {
        let p = problem(101);
        let sharded = ShardedProblem::new(&p, 8);
        assert_eq!(sharded.num_shards(), 8);
        let mut seen = vec![0u32; 101];
        for shard in sharded.shards() {
            for &i in shard {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each index in one shard");
    }

    #[test]
    fn shard_count_is_clamped() {
        let p = problem(5);
        assert_eq!(ShardedProblem::new(&p, 0).num_shards(), 1);
        assert_eq!(ShardedProblem::new(&p, 100).num_shards(), 5);
        for shard in ShardedProblem::new(&p, 100).shards() {
            assert_eq!(shard.len(), 1);
        }
    }

    #[test]
    fn order_is_descending_marginal_density() {
        let p = problem(60);
        let sharded = ShardedProblem::new(&p, 4);
        let key = |i: usize| p.access_probs()[i] / (p.change_rates()[i] * p.sizes()[i]);
        let order = sharded.order();
        for w in order.windows(2) {
            assert!(
                key(w[0]) >= key(w[1]),
                "order not descending at {} -> {}",
                w[0],
                w[1]
            );
        }
        // Contiguity: shard j's members are a contiguous slice of `order`.
        let rebuilt: Vec<usize> = sharded.shards().flatten().copied().collect();
        assert_eq!(rebuilt, order);
    }

    #[test]
    fn shard_columns_are_true_subslices() {
        let p = problem(101);
        let sharded = ShardedProblem::new(&p, 8);
        let all = sharded.columns();
        for j in 0..sharded.num_shards() {
            let cols = sharded.shard_columns(j);
            let range = sharded.shard_range(j);
            assert_eq!(cols.ids, sharded.shard(j));
            // Borrowed, not copied: the shard's columns alias the packed
            // sorted columns directly.
            assert!(std::ptr::eq(cols.p.as_ptr(), all.p()[range].as_ptr()));
            for (k, &i) in cols.ids.iter().enumerate() {
                assert_eq!(cols.p[k], p.access_probs()[i]);
                assert_eq!(cols.lambda[k], p.change_rates()[i]);
                assert_eq!(cols.s[k], p.sizes()[i]);
            }
        }
    }

    #[test]
    fn static_elements_sort_last() {
        let pr = Problem::builder()
            .change_rates(vec![2.0, 0.0, 1.0])
            .access_weights(vec![1.0, 5.0, 1.0])
            .bandwidth(2.0)
            .build()
            .unwrap();
        let sharded = ShardedProblem::new(&pr, 1);
        assert_eq!(*sharded.order().last().unwrap(), 1);
    }
}
