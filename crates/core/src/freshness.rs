//! The Fixed-Order freshness formula and the perceived-freshness metric.
//!
//! Following Cho & Garcia-Molina (SIGMOD 2000) — the paper's ref \[5\] — an
//! element whose source copy changes as a Poisson process with rate `λ`
//! (changes per period) and which the mirror refreshes `f` times per period
//! at *evenly spaced* instants (the **Fixed-Order** policy) has
//! time-averaged freshness
//!
//! ```text
//! F̄(λ, f) = (f/λ) · (1 − e^{−λ/f})        with F̄(λ, 0) = 0.
//! ```
//!
//! Writing `r = λ/f` (expected number of source changes per refresh
//! interval) this is `F̄ = (1 − e^{−r}) / r`, a strictly decreasing function
//! of `r` — refresh more often than the object changes and freshness
//! approaches 1; refresh much less often and it approaches 0.
//!
//! The paper's contribution is to weight each element's freshness by its
//! access probability `pᵢ`, producing **perceived freshness**
//! `PF = Σᵢ pᵢ · F̄(λᵢ, fᵢ)` (Definitions 3–4, plus the identity
//! `E[PF(A)] = Σ pᵢ F̄ᵢ` proved in their technical report).
//!
//! The weighted accumulators here use compensated (Neumaier) summation —
//! see [`crate::numeric`] — so million-element PF evaluations keep full
//! precision.

use crate::numeric::NeumaierSum;

/// Expected number of source changes per refresh interval below which we
/// switch to a Taylor expansion of `(1 − e^{−r})/r` to avoid catastrophic
/// cancellation.
const SMALL_R: f64 = 1e-5;

/// Time-averaged freshness of one element under the Fixed-Order policy.
///
/// * `lambda` — change frequency (Poisson rate, changes per period), `≥ 0`.
/// * `f` — synchronization frequency (refreshes per period), `≥ 0`.
///
/// Edge cases: `f == 0` yields `0` (never refreshed ⇒ eventually always
/// stale) unless `lambda == 0`, in which case the element never changes and
/// is always fresh (`1`).
///
/// ```
/// use freshen_core::freshness::steady_state_freshness;
/// // Refresh as often as it changes: F = 1 - 1/e ≈ 0.632.
/// let f = steady_state_freshness(2.0, 2.0);
/// assert!((f - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// // Never refreshed => 0; never changes => 1.
/// assert_eq!(steady_state_freshness(3.0, 0.0), 0.0);
/// assert_eq!(steady_state_freshness(0.0, 0.0), 1.0);
/// ```
#[inline]
pub fn steady_state_freshness(lambda: f64, f: f64) -> f64 {
    debug_assert!(lambda >= 0.0, "change rate must be non-negative");
    debug_assert!(f >= 0.0, "sync frequency must be non-negative");
    if lambda <= 0.0 {
        return 1.0;
    }
    if f <= 0.0 {
        return 0.0;
    }
    let r = lambda / f;
    freshness_of_ratio(r)
}

/// Freshness as a function of the change-to-refresh ratio `r = λ/f`.
///
/// `F(r) = (1 − e^{−r}) / r`, continuously extended with `F(0) = 1`.
#[inline]
pub fn freshness_of_ratio(r: f64) -> f64 {
    debug_assert!(r >= 0.0);
    if r < SMALL_R {
        // (1 - e^{-r})/r = 1 - r/2 + r²/6 - r³/24 + ...
        1.0 - r / 2.0 + r * r / 6.0
    } else {
        (1.0 - (-r).exp()) / r
    }
}

/// Marginal freshness per unit of extra sync frequency:
/// `g(f; λ) = ∂F̄/∂f = (1/λ)(1 − e^{−λ/f}) − (1/f)·e^{−λ/f}`.
///
/// `g` is strictly decreasing in `f` (because `F̄` is strictly concave in
/// `f`), falling from `1/λ` as `f → 0⁺` toward `0` as `f → ∞`. The exact
/// Lagrange solver in `freshen-solver` equalizes `pᵢ·g(fᵢ; λᵢ)` across all
/// elements receiving bandwidth (the paper's Appendix, Eq. 5).
///
/// ```
/// use freshen_core::freshness::freshness_gradient;
/// let lambda = 2.0;
/// // Near zero frequency the marginal value approaches 1/λ ...
/// assert!((freshness_gradient(lambda, 1e-9) - 0.5).abs() < 1e-6);
/// // ... and it decreases with f.
/// assert!(freshness_gradient(lambda, 1.0) > freshness_gradient(lambda, 2.0));
/// ```
#[inline]
pub fn freshness_gradient(lambda: f64, f: f64) -> f64 {
    debug_assert!(
        lambda > 0.0,
        "gradient is defined for positive change rates"
    );
    debug_assert!(f >= 0.0);
    if f <= 0.0 {
        return 1.0 / lambda;
    }
    let r = lambda / f;
    if r > 700.0 {
        // e^{-r} underflows; the limit is exactly 1/λ.
        return 1.0 / lambda;
    }
    if r < SMALL_R {
        // Expand in r: g = (1/λ)·(1−e^{−r}) − (r/λ)·e^{−r}
        //            = (1/λ)·[ (r − r²/2 + r³/6) − r(1 − r + r²/2) ] + O(r⁴)
        //            = (1/λ)·[ r²/2 − r³/3 ] + O(r⁴)
        return (r * r / 2.0 - r * r * r / 3.0) / lambda;
    }
    let e = (-r).exp();
    (1.0 - e) / lambda - e / f
}

/// Perceived freshness of an allocation: `PF = Σᵢ wᵢ · F̄(λᵢ, fᵢ)`.
///
/// `weights` are typically access probabilities summing to 1, in which case
/// the result lies in `[0, 1]`; with unnormalized weights the result is the
/// correspondingly scaled expectation. Slices must have equal length.
///
/// ```
/// use freshen_core::freshness::perceived_freshness;
/// let p = [0.5, 0.5];
/// let lam = [1.0, 1.0];
/// let f = [1.0, 1.0];
/// let pf = perceived_freshness(&p, &lam, &f);
/// assert!((pf - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// ```
#[inline]
pub fn perceived_freshness(weights: &[f64], lambdas: &[f64], freqs: &[f64]) -> f64 {
    assert_eq!(
        weights.len(),
        lambdas.len(),
        "weights/lambdas length mismatch"
    );
    assert_eq!(weights.len(), freqs.len(), "weights/freqs length mismatch");
    let mut acc = NeumaierSum::new();
    for ((&w, &l), &f) in weights.iter().zip(lambdas).zip(freqs) {
        if w != 0.0 {
            acc.add(w * steady_state_freshness(l, f));
        }
    }
    acc.total()
}

/// *General* (interest-blind) freshness of an allocation: the unweighted
/// mean `Σᵢ F̄(λᵢ, fᵢ) / N` — Definition 2 of the paper and the objective of
/// Cho & Garcia-Molina's scheduler (the paper's "GF technique").
#[inline]
pub fn general_freshness(lambdas: &[f64], freqs: &[f64]) -> f64 {
    assert_eq!(lambdas.len(), freqs.len(), "lambdas/freqs length mismatch");
    if lambdas.is_empty() {
        return 0.0;
    }
    let mut acc = NeumaierSum::new();
    for (&l, &f) in lambdas.iter().zip(freqs) {
        acc.add(steady_state_freshness(l, f));
    }
    acc.total() / lambdas.len() as f64
}

/// The inverse problem: the sync frequency at which an element with change
/// rate `lambda` achieves target freshness `target ∈ (0, 1)`.
///
/// Solves `(1 − e^{−λ/f})/(λ/f) = target` for `f` by bisection on
/// `r = λ/f`. Useful for SLA-style reasoning ("how often must I poll to
/// keep this copy 95% fresh?").
///
/// Returns `None` for targets outside `(0, 1)` or non-positive `lambda`.
pub fn frequency_for_freshness(lambda: f64, target: f64) -> Option<f64> {
    if !(0.0..1.0).contains(&target) || target == 0.0 || lambda <= 0.0 {
        return None;
    }
    // F(r) decreases from 1 at r=0 to 0 as r→∞. Find r with F(r)=target.
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    while freshness_of_ratio(hi) > target {
        hi *= 2.0;
        if hi > 1e12 {
            return None;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if freshness_of_ratio(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let r = 0.5 * (lo + hi);
    Some(lambda / r)
}

/// Time-averaged **age** of an element under the Fixed-Order policy:
/// the expected time since the first unseen source change (0 while the
/// copy is fresh).
///
/// Cho & Garcia-Molina's companion metric to freshness. For sync interval
/// `I = 1/f` and `r = λ/f`:
///
/// ```text
/// Ā(λ, f) = I · [ 1/2 − 1/r + (1 − e^{−r})/r² ]
/// ```
///
/// derived by conditioning on the offset `u ∈ [0, I)` since the last
/// sync: `E[age | u] = u − (1/λ)(1 − e^{−λu})`, averaged over `u`.
///
/// Limits: `f → ∞` gives 0; `f → 0` diverges (a never-refreshed copy ages
/// without bound, returned as `f64::INFINITY`); `λ = 0` gives 0 (a static
/// copy is never out of date).
///
/// ```
/// use freshen_core::freshness::steady_state_age;
/// assert_eq!(steady_state_age(1.0, 0.0), f64::INFINITY);
/// assert_eq!(steady_state_age(0.0, 1.0), 0.0);
/// // Very volatile object: stale almost immediately, mean age ≈ I/2.
/// assert!((steady_state_age(1e6, 2.0) - 0.25).abs() < 1e-3);
/// ```
#[inline]
pub fn steady_state_age(lambda: f64, f: f64) -> f64 {
    debug_assert!(lambda >= 0.0 && f >= 0.0);
    if lambda <= 0.0 {
        return 0.0;
    }
    if f <= 0.0 {
        return f64::INFINITY;
    }
    let r = lambda / f;
    let bracket = if r < 1e-3 {
        // 1/2 − 1/r + (1−e^{−r})/r² = r/6 − r²/24 + r³/120 − …
        r / 6.0 - r * r / 24.0 + r * r * r / 120.0
    } else {
        0.5 - 1.0 / r + (1.0 - (-r).exp()) / (r * r)
    };
    bracket / f
}

/// Perceived (profile-weighted) age: `Σᵢ wᵢ·Ā(λᵢ, fᵢ)` under Fixed Order.
/// Infinite as soon as any positively-weighted changing element gets zero
/// bandwidth.
#[inline]
pub fn perceived_age(weights: &[f64], lambdas: &[f64], freqs: &[f64]) -> f64 {
    assert_eq!(
        weights.len(),
        lambdas.len(),
        "weights/lambdas length mismatch"
    );
    assert_eq!(weights.len(), freqs.len(), "weights/freqs length mismatch");
    let mut acc = NeumaierSum::new();
    for ((&w, &l), &f) in weights.iter().zip(lambdas).zip(freqs) {
        if w != 0.0 {
            acc.add(w * steady_state_age(l, f));
        }
    }
    acc.total()
}

/// Second derivative `∂²F̄/∂f²` of the Fixed-Order freshness — always
/// negative for `f > 0`, certifying concavity (the paper's footnote 2).
///
/// `F̄(f) = (f/λ)(1 − e^{−λ/f})`;
/// `F̄''(f) = −(λ/f³)·e^{−λ/f}`.
#[inline]
pub fn freshness_second_derivative(lambda: f64, f: f64) -> f64 {
    debug_assert!(lambda > 0.0 && f > 0.0);
    let r = lambda / f;
    if r > 700.0 {
        return 0.0; // underflow region; limit is 0⁻
    }
    -(lambda / (f * f * f)) * (-r).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn freshness_at_equal_rates_is_one_minus_inv_e() {
        for lam in [0.5, 1.0, 3.0, 10.0] {
            let f = steady_state_freshness(lam, lam);
            assert!(close(f, 1.0 - (-1.0f64).exp(), 1e-12), "lam={lam} gave {f}");
        }
    }

    #[test]
    fn freshness_monotone_in_frequency() {
        let lam = 2.5;
        let mut prev = 0.0;
        for k in 1..200 {
            let f = steady_state_freshness(lam, k as f64 * 0.1);
            assert!(f > prev, "freshness must strictly increase with f");
            prev = f;
        }
    }

    #[test]
    fn freshness_monotone_decreasing_in_change_rate() {
        let f = 2.0;
        let mut prev = 1.0;
        for k in 1..200 {
            let fr = steady_state_freshness(k as f64 * 0.1, f);
            assert!(fr < prev, "freshness must strictly decrease with λ");
            prev = fr;
        }
    }

    #[test]
    fn freshness_bounds() {
        for lam in [0.1, 1.0, 7.0] {
            for f in [0.0, 0.01, 1.0, 100.0] {
                let fr = steady_state_freshness(lam, f);
                assert!((0.0..=1.0).contains(&fr));
            }
        }
    }

    #[test]
    fn freshness_small_ratio_series_matches_exact() {
        // Just above the Taylor cutoff, both branches must agree.
        let r: f64 = 2e-5;
        let exact = (1.0 - (-r).exp()) / r;
        let series = 1.0 - r / 2.0 + r * r / 6.0;
        assert!(close(exact, series, 1e-12));
    }

    #[test]
    fn freshness_high_frequency_approaches_one() {
        assert!(steady_state_freshness(1.0, 1e9) > 1.0 - 1e-9);
    }

    #[test]
    fn freshness_zero_frequency_is_zero() {
        assert_eq!(steady_state_freshness(5.0, 0.0), 0.0);
    }

    #[test]
    fn static_object_always_fresh() {
        assert_eq!(steady_state_freshness(0.0, 0.0), 1.0);
        assert_eq!(steady_state_freshness(0.0, 3.0), 1.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let lam = 3.0;
        for f in [0.2, 0.7, 1.0, 2.5, 10.0, 100.0] {
            let h = 1e-6 * f;
            let num = (steady_state_freshness(lam, f + h) - steady_state_freshness(lam, f - h))
                / (2.0 * h);
            let ana = freshness_gradient(lam, f);
            assert!(
                close(num, ana, 1e-5),
                "f={f}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn gradient_limit_at_zero_is_inv_lambda() {
        for lam in [0.5, 2.0, 9.0] {
            assert!(close(freshness_gradient(lam, 0.0), 1.0 / lam, 1e-12));
            assert!(close(freshness_gradient(lam, 1e-12), 1.0 / lam, 1e-6));
        }
    }

    #[test]
    fn gradient_strictly_decreasing() {
        let lam = 1.7;
        let mut prev = f64::INFINITY;
        for k in 0..500 {
            let f = 0.01 + k as f64 * 0.05;
            let g = freshness_gradient(lam, f);
            assert!(g < prev, "gradient must strictly decrease (f={f})");
            assert!(g > 0.0, "gradient stays positive");
            prev = g;
        }
    }

    #[test]
    fn gradient_huge_frequency_tiny() {
        assert!(freshness_gradient(1.0, 1e6) < 1e-11);
    }

    #[test]
    fn second_derivative_negative() {
        for lam in [0.3, 1.0, 4.0] {
            for f in [0.1, 1.0, 10.0] {
                assert!(freshness_second_derivative(lam, f) < 0.0);
            }
        }
    }

    #[test]
    fn second_derivative_matches_finite_difference_of_gradient() {
        let lam = 2.0;
        for f in [0.5, 1.0, 3.0] {
            let h = 1e-5;
            let num = (freshness_gradient(lam, f + h) - freshness_gradient(lam, f - h)) / (2.0 * h);
            let ana = freshness_second_derivative(lam, f);
            assert!(close(num, ana, 1e-4), "f={f}: {num} vs {ana}");
        }
    }

    #[test]
    fn perceived_freshness_weighted_average() {
        let p = [0.8, 0.2];
        let lam = [1.0, 1.0];
        // first element perfectly fresh, second never refreshed
        let f = [1e12, 0.0];
        let pf = perceived_freshness(&p, &lam, &f);
        assert!(close(pf, 0.8, 1e-9));
    }

    #[test]
    fn perceived_freshness_zero_weight_ignores_staleness() {
        // "If a given item is never accessed, it does not contribute ...
        // regardless of how stale its value is."
        let pf = perceived_freshness(&[1.0, 0.0], &[1.0, 100.0], &[10.0, 0.0]);
        let alone = perceived_freshness(&[1.0], &[1.0], &[10.0]);
        assert_eq!(pf, alone);
    }

    #[test]
    fn general_freshness_is_unweighted_mean() {
        let lam = [1.0, 2.0];
        let f = [1.0, 2.0];
        let gf = general_freshness(&lam, &f);
        let expect = (steady_state_freshness(1.0, 1.0) + steady_state_freshness(2.0, 2.0)) / 2.0;
        assert!(close(gf, expect, 1e-15));
    }

    #[test]
    fn general_freshness_empty_is_zero() {
        assert_eq!(general_freshness(&[], &[]), 0.0);
    }

    #[test]
    fn frequency_for_freshness_roundtrip() {
        for lam in [0.5, 2.0, 8.0] {
            for target in [0.1, 0.5, 0.9, 0.99] {
                let f = frequency_for_freshness(lam, target).unwrap();
                let achieved = steady_state_freshness(lam, f);
                assert!(close(achieved, target, 1e-9), "lam={lam} target={target}");
            }
        }
    }

    #[test]
    fn frequency_for_freshness_rejects_bad_inputs() {
        assert!(frequency_for_freshness(1.0, 0.0).is_none());
        assert!(frequency_for_freshness(1.0, 1.0).is_none());
        assert!(frequency_for_freshness(1.0, 1.5).is_none());
        assert!(frequency_for_freshness(0.0, 0.5).is_none());
        assert!(frequency_for_freshness(-1.0, 0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn perceived_freshness_length_mismatch_panics() {
        perceived_freshness(&[1.0], &[1.0, 2.0], &[1.0, 2.0]);
    }

    // ---- age metric ------------------------------------------------------

    #[test]
    fn age_decreasing_in_frequency() {
        let lam = 3.0;
        let mut prev = f64::INFINITY;
        for k in 1..100 {
            let a = steady_state_age(lam, k as f64 * 0.2);
            assert!(a < prev, "age must fall as refreshes speed up");
            assert!(a >= 0.0);
            prev = a;
        }
    }

    #[test]
    fn age_increasing_in_change_rate() {
        let f = 2.0;
        let mut prev = 0.0;
        for k in 1..100 {
            let a = steady_state_age(k as f64 * 0.3, f);
            assert!(a > prev, "age must rise with volatility");
            prev = a;
        }
    }

    #[test]
    fn age_matches_direct_numeric_integration() {
        // Ā = (1/I)∫₀ᴵ [u − (1/λ)(1 − e^{−λu})] du, integrated numerically.
        for (lam, f) in [(1.0, 2.0), (4.0, 1.0), (0.5, 0.5)] {
            let interval: f64 = 1.0 / f;
            let steps = 200_000;
            let mut acc = 0.0;
            for k in 0..steps {
                let u = (k as f64 + 0.5) * interval / steps as f64;
                acc += u - (1.0 - (-lam * u).exp()) / lam;
            }
            let numeric = acc / steps as f64;
            let analytic = steady_state_age(lam, f);
            assert!(
                (numeric - analytic).abs() < 1e-6 * (1.0 + analytic),
                "λ={lam} f={f}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn age_small_ratio_series_continuous() {
        let lam = 1.0;
        // Straddle the series cutoff r = 1e-3 (f = λ/r). Ā ≈ r²/(6λ) here,
        // so the two nearby r's genuinely differ by ~0.4%; any branch
        // discontinuity would dwarf 1%.
        let below = steady_state_age(lam, lam / 0.999e-3);
        let above = steady_state_age(lam, lam / 1.001e-3);
        assert!((below - above).abs() < above * 1e-2);
    }

    #[test]
    fn age_extremes() {
        assert_eq!(steady_state_age(0.0, 0.0), 0.0);
        assert_eq!(steady_state_age(2.0, 0.0), f64::INFINITY);
        assert!(steady_state_age(1.0, 1e9) < 1e-9);
    }

    #[test]
    fn perceived_age_weighted_and_infinite_on_starved() {
        let a = perceived_age(&[0.5, 0.5], &[1.0, 1.0], &[1.0, 1.0]);
        assert!((a - steady_state_age(1.0, 1.0)).abs() < 1e-12);
        // Starve a weighted element: infinite perceived age.
        let inf = perceived_age(&[0.5, 0.5], &[1.0, 1.0], &[1.0, 0.0]);
        assert!(inf.is_infinite());
        // Zero-weight starved element is fine.
        let ok = perceived_age(&[1.0, 0.0], &[1.0, 1.0], &[1.0, 0.0]);
        assert!(ok.is_finite());
    }
}
