//! Deterministic parallel execution: the [`Executor`] abstraction.
//!
//! Every hot loop in the workspace (Lagrange inner-root evaluation,
//! partition statistics, k-means passes, PF scoring) is shaped the same
//! way: an embarrassingly parallel map over element indices, sometimes
//! followed by a reduction. `Executor` packages exactly that shape behind
//! two primitives — [`par_map`](Executor::par_map) and
//! [`par_chunks_reduce`](Executor::par_chunks_reduce) — with one hard
//! rule that makes parallelism safe to thread through numerical code:
//!
//! > **Determinism rule.** Chunk boundaries are a function of the input
//! > length only — never of the worker count — and per-chunk partial
//! > results are combined in fixed chunk order on the calling thread. The
//! > serial executor runs the *same* chunks sequentially.
//!
//! Consequently a computation produces bit-identical results whether it
//! runs on the [`Serial`](Executor::serial) executor or a
//! [`ThreadPool`](Executor::thread_pool) of any size; thread scheduling
//! affects wall-clock time only. The property tests in
//! `tests/properties.rs` assert this across the solver and heuristic
//! pipelines.
//!
//! Workers are crossbeam scoped threads, spawned per call: workloads here
//! are long (10⁴–10⁶ elements), so spawn cost is noise, and scoped
//! threads let closures borrow the caller's stack without `'static`
//! gymnastics. The worker count comes from `--threads` on the CLIs or the
//! `FRESHEN_THREADS` environment variable (see
//! [`Executor::from_threads`]); the default is serial, preserving
//! historical single-threaded behavior everywhere an executor is not
//! explicitly configured.
//!
//! When built with an enabled [`Recorder`], every parallel region emits
//! an `exec.worker` span per worker (with the worker index and the number
//! of tasks it claimed) plus `exec.par_calls` / `exec.par_tasks`
//! counters, so pool utilization shows up in Chrome traces next to the
//! solver and heuristic spans.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use freshen_obs::Recorder;

/// Default elements-per-chunk granularity for chunked reductions. Small
/// enough to balance 4–8 workers at `N = 10⁵`, large enough that per-chunk
/// overhead is negligible.
pub const DEFAULT_CHUNK: usize = 8_192;

/// Environment variable consulted by [`Executor::from_env`] for the
/// worker count.
pub const THREADS_ENV: &str = "FRESHEN_THREADS";

/// Minimum per-worker slice of a `par_map`; below this, splitting further
/// only adds scheduling overhead. Affects load balancing only, never
/// results.
const MIN_MAP_CHUNK: usize = 1_024;

/// A serial or thread-pool execution strategy for data-parallel loops.
///
/// Cheap to clone (a worker count plus a [`Recorder`] handle); the
/// default is [`Executor::serial`], so embedding an `Executor` field in a
/// solver or scheduler changes nothing until a pool is configured.
#[derive(Debug, Clone)]
pub struct Executor {
    workers: usize,
    recorder: Recorder,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::serial()
    }
}

impl Executor {
    /// The serial executor: every primitive runs inline on the calling
    /// thread, over the same chunks a pool would use.
    pub fn serial() -> Self {
        Executor {
            workers: 1,
            recorder: Recorder::disabled(),
        }
    }

    /// A pool of `workers` crossbeam scoped threads (clamped to at least
    /// 1; `thread_pool(1)` is equivalent to [`Executor::serial`]).
    pub fn thread_pool(workers: usize) -> Self {
        Executor {
            workers: workers.max(1),
            recorder: Recorder::disabled(),
        }
    }

    /// Worker count from the `FRESHEN_THREADS` environment variable
    /// (serial when unset or unparsable).
    pub fn from_env() -> Self {
        let workers = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1);
        Self::thread_pool(workers)
    }

    /// Resolve a worker count with the CLI precedence: an explicit
    /// `--threads` value wins, `Some(0)`/`None` fall back to
    /// `FRESHEN_THREADS`, and an unset environment means serial.
    pub fn from_threads(threads: Option<usize>) -> Self {
        match threads {
            Some(n) if n > 0 => Self::thread_pool(n),
            _ => Self::from_env(),
        }
    }

    /// Attach a recorder so parallel regions emit per-worker spans and
    /// counters.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether this executor spawns worker threads (`workers > 1`).
    pub fn is_parallel(&self) -> bool {
        self.workers > 1
    }

    /// The recorder parallel regions report to.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Run `tasks` independent jobs and collect their results in task
    /// order. Serial executors (or single-task calls) run inline; pools
    /// hand task indices to workers through an atomic cursor. Results are
    /// placed by task index, so the output order never depends on
    /// scheduling.
    fn run_tasks<R, F>(&self, tasks: usize, run: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if !self.is_parallel() || tasks <= 1 {
            return (0..tasks).map(run).collect();
        }
        let workers = self.workers.min(tasks);
        self.recorder.counter("exec.par_calls").inc();
        self.recorder.counter("exec.par_tasks").add(tasks as u64);
        let next = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, R)>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let next = &next;
                    let run = &run;
                    let recorder = &self.recorder;
                    scope.spawn(move |_| {
                        let mut span = recorder.span("exec.worker");
                        span.arg("worker", w);
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks {
                                break;
                            }
                            local.push((i, run(i)));
                        }
                        span.arg("tasks", local.len());
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("executor worker panicked"))
                .collect()
        })
        .expect("executor scope panicked");
        let mut slots: Vec<Option<R>> = (0..tasks).map(|_| None).collect();
        for (i, r) in parts.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every task index claimed exactly once"))
            .collect()
    }

    /// Map `f` over `0..len`, returning results in index order. The map is
    /// applied per element, so the output is identical for any worker
    /// count (chunking here affects load balance only).
    pub fn par_map_index<R, F>(&self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let chunk = len
            .div_ceil(self.workers.max(1) * 4)
            .max(MIN_MAP_CHUNK)
            .min(len.max(1));
        let chunks = chunk_ranges(len, chunk);
        let parts = self.run_tasks(chunks.len(), |c| {
            chunks[c].clone().map(&f).collect::<Vec<R>>()
        });
        let mut out = Vec::with_capacity(len);
        for part in parts {
            out.extend(part);
        }
        out
    }

    /// Map `f` over a slice, preserving input order in the output.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_index(items.len(), |i| f(&items[i]))
    }

    /// Split `0..len` into fixed chunks of `chunk` elements, map each
    /// chunk to a partial result, then fold the partials **in chunk
    /// order** on the calling thread. Because the boundaries depend only
    /// on `len` and `chunk`, and the fold order is fixed, the result is
    /// bit-identical at any worker count — the serial executor reduces
    /// the very same partials. Returns `None` when `len == 0`.
    pub fn par_chunks_reduce<R, M, F>(&self, len: usize, chunk: usize, map: M, fold: F) -> Option<R>
    where
        R: Send,
        M: Fn(Range<usize>) -> R + Sync,
        F: FnMut(R, R) -> R,
    {
        let chunks = chunk_ranges(len, chunk.max(1));
        let parts = self.run_tasks(chunks.len(), |c| map(chunks[c].clone()));
        parts.into_iter().reduce(fold)
    }

    /// Map over caller-supplied index ranges (for example the shards of a
    /// [`crate::shard::ShardedProblem`]), returning results in range
    /// order.
    pub fn map_ranges<R, M>(&self, ranges: &[Range<usize>], map: M) -> Vec<R>
    where
        R: Send,
        M: Fn(Range<usize>) -> R + Sync,
    {
        self.run_tasks(ranges.len(), |c| map(ranges[c].clone()))
    }

    /// Run two closures, overlapping them on a pool (`a` on a worker
    /// thread, `b` on the calling thread) and sequentially (`a` then `b`)
    /// on the serial executor. The results are independent of which path
    /// ran.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB,
        RA: Send,
    {
        if !self.is_parallel() {
            let ra = a();
            (ra, b())
        } else {
            crossbeam::scope(|scope| {
                let handle = scope.spawn(move |_| a());
                let rb = b();
                (handle.join().expect("joined task panicked"), rb)
            })
            .expect("executor scope panicked")
        }
    }
}

/// Contiguous ranges of `chunk` indices covering `0..len` (the last range
/// may be short). Depends only on `len` and `chunk`, never on worker
/// count — callers that pre-compute chunk lists (the Lagrange solver's
/// allocation loop) rely on this to keep results identical across
/// executors.
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<Range<usize>> {
    (0..len.div_ceil(chunk))
        .map(|c| {
            let start = c * chunk;
            start..(start + chunk).min(len)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::NeumaierSum;

    #[test]
    fn par_map_preserves_order_on_pool() {
        let items: Vec<usize> = (0..10_000).collect();
        let serial = Executor::serial().par_map(&items, |&x| x * 3);
        let pooled = Executor::thread_pool(4).par_map(&items, |&x| x * 3);
        assert_eq!(serial, pooled);
        assert_eq!(serial[1234], 3702);
    }

    #[test]
    fn par_map_empty_and_tiny() {
        let empty: Vec<u32> = Vec::new();
        assert!(Executor::thread_pool(8).par_map(&empty, |&x| x).is_empty());
        assert_eq!(
            Executor::thread_pool(8).par_map_index(3, |i| i + 1),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn chunked_reduce_is_bit_identical_across_worker_counts() {
        // Float accumulation is order-sensitive; the fixed chunk
        // boundaries and fold order must make the result exactly equal.
        let values: Vec<f64> = (0..50_000)
            .map(|i| ((i as f64) * 0.618).sin() / (1.0 + i as f64))
            .collect();
        let sum_with = |workers: usize| {
            Executor::thread_pool(workers)
                .par_chunks_reduce(
                    values.len(),
                    1_000,
                    |range| {
                        let mut acc = NeumaierSum::new();
                        for &v in &values[range] {
                            acc.add(v);
                        }
                        acc
                    },
                    |mut a, b| {
                        a.merge(b);
                        a
                    },
                )
                .unwrap()
                .total()
        };
        let serial = sum_with(1);
        for workers in [2, 4, 8] {
            let pooled = sum_with(workers);
            assert_eq!(serial.to_bits(), pooled.to_bits(), "workers={workers}");
        }
    }

    #[test]
    fn chunked_reduce_empty_input() {
        let out = Executor::thread_pool(2).par_chunks_reduce(0, 64, |_| 1u64, |a, b| a + b);
        assert_eq!(out, None);
    }

    #[test]
    fn map_ranges_keeps_range_order() {
        let ranges = vec![0..3, 3..5, 5..11, 11..11];
        let out = Executor::thread_pool(3).map_ranges(&ranges, |r| r.len());
        assert_eq!(out, vec![3, 2, 6, 0]);
    }

    #[test]
    fn join_runs_both_closures() {
        for exec in [Executor::serial(), Executor::thread_pool(2)] {
            let (a, b) = exec.join(|| 6 * 7, || "side".len());
            assert_eq!((a, b), (42, 4));
        }
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(Executor::serial().workers(), 1);
        assert!(!Executor::serial().is_parallel());
        assert_eq!(Executor::thread_pool(0).workers(), 1);
        assert_eq!(Executor::thread_pool(4).workers(), 4);
        assert!(Executor::thread_pool(4).is_parallel());
        assert_eq!(Executor::from_threads(Some(3)).workers(), 3);
        assert_eq!(Executor::default().workers(), 1);
    }

    #[test]
    fn env_fallback_resolution() {
        // One test owns FRESHEN_THREADS to avoid races; restore the
        // ambient value (CI sets it for the pool-path test job).
        let previous = std::env::var(THREADS_ENV).ok();
        std::env::set_var(THREADS_ENV, "7");
        assert_eq!(Executor::from_env().workers(), 7);
        assert_eq!(Executor::from_threads(None).workers(), 7);
        assert_eq!(Executor::from_threads(Some(0)).workers(), 7);
        assert_eq!(Executor::from_threads(Some(2)).workers(), 2);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert_eq!(Executor::from_env().workers(), 1);
        match previous {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
    }

    #[test]
    fn pool_reports_worker_spans_and_counters() {
        let recorder = Recorder::enabled();
        let exec = Executor::thread_pool(4).with_recorder(recorder.clone());
        let out = exec.par_map_index(20_000, |i| i as u64);
        assert_eq!(out.len(), 20_000);
        assert!(recorder.counter_value("exec.par_calls").unwrap() >= 1);
        assert!(recorder.counter_value("exec.par_tasks").unwrap() >= 2);
        let trace = recorder.chrome_trace_json().unwrap();
        assert!(
            trace.contains("exec.worker"),
            "missing worker span: {trace}"
        );
    }

    #[test]
    fn serial_executor_emits_no_parallel_telemetry() {
        let recorder = Recorder::enabled();
        let exec = Executor::serial().with_recorder(recorder.clone());
        let _ = exec.par_map_index(10_000, |i| i);
        assert_eq!(recorder.counter_value("exec.par_calls"), None);
    }
}
