//! Compensated floating-point accumulation (Neumaier's variant of Kahan
//! summation).
//!
//! Naive left-to-right `f64` summation loses roughly one bit of precision
//! per order of magnitude of term count: at `N = 10⁶` normalized access
//! probabilities (each `≈ 1e-6`), the running error can approach the
//! `Σ pᵢ = 1 ± 1e-6` validation tolerance itself, making large problems
//! fail [`crate::problem::Problem`] validation nondeterministically.
//! Neumaier summation carries a running compensation term that captures
//! the low-order bits lost by each addition, keeping the error independent
//! of `N` (a few ulps) at the cost of ~4 flops per term.
//!
//! Used by the `problem` and `freshness` accumulators and by the chunked
//! parallel reductions in [`crate::exec`], where per-chunk partials are
//! merged in fixed chunk order so results are identical at any worker
//! count.

/// A running compensated sum (Neumaier / "improved Kahan–Babuška").
///
/// ```
/// use freshen_core::numeric::NeumaierSum;
///
/// let mut acc = NeumaierSum::new();
/// for x in [1e16, 1.0, -1e16] {
///     acc.add(x);
/// }
/// // Naive summation returns 0.0 here; the compensated sum is exact.
/// assert_eq!(acc.total(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// An empty sum (total `0.0`).
    pub fn new() -> Self {
        NeumaierSum::default()
    }

    /// Add one term, folding the rounding error of the addition into the
    /// compensation. Non-finite partial sums propagate uncompensated
    /// (`inf − inf` would otherwise poison the compensation with NaN —
    /// perceived age is legitimately infinite for starved elements).
    #[inline]
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if t.is_finite() {
            if self.sum.abs() >= value.abs() {
                self.compensation += (self.sum - t) + value;
            } else {
                self.compensation += (value - t) + self.sum;
            }
        }
        self.sum = t;
    }

    /// Merge another compensated partial sum into this one (used when
    /// combining per-chunk partials from a parallel reduction). The merge
    /// is performed in the caller's order, so a fixed merge order yields a
    /// fixed result.
    #[inline]
    pub fn merge(&mut self, other: NeumaierSum) {
        self.add(other.sum);
        self.compensation += other.compensation;
    }

    /// The compensated total.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// Compensated sum of an iterator of terms.
pub fn neumaier_sum(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = NeumaierSum::new();
    for v in values {
        acc.add(v);
    }
    acc.total()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_cancelled_low_order_bits() {
        assert_eq!(neumaier_sum([1e16, 1.0, -1e16]), 1.0);
        // The classic Neumaier-beats-Kahan case: the big term arrives second.
        assert_eq!(neumaier_sum([1.0, 1e100, 1.0, -1e100]), 2.0);
    }

    #[test]
    fn empty_and_single_term_are_exact() {
        assert_eq!(neumaier_sum([]), 0.0);
        assert_eq!(neumaier_sum([0.125]), 0.125);
    }

    #[test]
    fn million_normalized_weights_sum_to_one() {
        // Uneven weights normalized by their own naive total must re-sum to
        // 1 within a few ulps under compensation.
        let n = 1_000_000;
        let raw: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + (i % 997) as f64)).collect();
        let total: f64 = raw.iter().sum();
        let sum = neumaier_sum(raw.iter().map(|w| w / total));
        assert!((sum - 1.0).abs() < 1e-12, "compensated sum {sum}");
    }

    #[test]
    fn infinite_terms_stay_infinite() {
        assert_eq!(neumaier_sum([1.0, f64::INFINITY, 2.0]), f64::INFINITY);
        assert!(neumaier_sum([f64::NAN, 1.0]).is_nan());
    }

    #[test]
    fn merge_matches_single_pass() {
        let values: Vec<f64> = (0..10_000)
            .map(|i| (i as f64 * 0.37).sin() * 1e8 + 1e-8)
            .collect();
        let whole = neumaier_sum(values.iter().copied());
        let mut left = NeumaierSum::new();
        for &v in &values[..5_000] {
            left.add(v);
        }
        let mut right = NeumaierSum::new();
        for &v in &values[5_000..] {
            right.add(v);
        }
        left.merge(right);
        assert!((left.total() - whole).abs() <= 1e-6 * whole.abs().max(1.0));
    }
}
