//! # freshen-core
//!
//! Core model for **application-aware data freshening**, a reproduction of
//! Carney, Lee & Zdonik, *"Scalable Application-Aware Data Freshening"*
//! (ICDE 2003).
//!
//! A *mirror site* keeps local copies of `N` objects owned by a remote
//! *source*. The source does not push updates, so the mirror polls
//! ("synchronizes") each copy. Bandwidth is limited: only `B` refreshes (or
//! `B` units of byte-bandwidth, once object sizes are modeled) may be spent
//! per period. Each object `i` changes at the source as a Poisson process
//! with rate `λᵢ` and is accessed by users with probability `pᵢ` (derived
//! from aggregated user *profiles*).
//!
//! This crate provides:
//!
//! * [`freshness`] — the Fixed-Order freshness formula `F̄(λ, f)`, its
//!   derivative, and the **perceived freshness** metric
//!   `PF = Σ pᵢ·F̄(λᵢ, fᵢ)`;
//! * [`problem`] — the optimization problem types ([`Problem`],
//!   [`Solution`]) shared by the exact solvers in `freshen-solver` and the
//!   scalable heuristics in `freshen-heuristics`;
//! * [`profile`] — individual user profiles and their (optionally weighted)
//!   aggregation into the master profile the scheduler consumes;
//! * [`schedule`] — turning refresh *frequencies* into a concrete
//!   Fixed-Order timetable of sync operations;
//! * [`estimate`] — estimating per-object change frequencies from observed
//!   poll history (the paper assumes these estimates exist; we build the
//!   estimator of its ref \[4\]);
//! * [`selection`] — the paper's §7 future-work extension: choosing *which*
//!   objects to mirror when the mirror is smaller than the database;
//! * [`access`] — access sets/logs and the empirical perceived-freshness
//!   score ("keeping score at each access", Definition 3);
//! * [`audit`] — the KKT optimality certificate checker
//!   ([`SolutionAudit`]) that turns the Appendix's Eq. 5 conditions into
//!   a machine-readable [`AuditReport`] for any solver's output;
//! * [`exec`] — the deterministic [`Executor`] abstraction (serial or
//!   crossbeam thread pool) behind every parallel hot loop;
//! * [`shard`] — [`ShardedProblem`], the contiguous-after-sort partition
//!   view the two-level parallel solve is built on;
//! * [`soa`] — structure-of-arrays column views ([`ProblemColumns`],
//!   [`PackedColumns`]): gather the hot columns once, then run every
//!   solver probe over contiguous memory instead of per-probe index
//!   indirection;
//! * [`numeric`] — compensated (Neumaier) summation so million-element
//!   accumulations stay accurate;
//! * [`topology`] — multi-tier relay topologies ([`Topology`]): a
//!   validated source → relay(s) → edge-mirror DAG with per-tier budgets
//!   and the composed-freshness recursion that scores a
//!   [`TieredSchedule`] at the edge;
//! * [`json`] — the offline-safe hand-rolled JSON reader spec files are
//!   parsed with (no serde required).
//!
//! ## Quick start
//!
//! ```
//! use freshen_core::problem::Problem;
//! use freshen_core::freshness::perceived_freshness;
//!
//! // Five objects changing 1..=5 times per period, uniform interest,
//! // budget of 5 refreshes per period.
//! let problem = Problem::builder()
//!     .change_rates(vec![1.0, 2.0, 3.0, 4.0, 5.0])
//!     .access_probs(vec![0.2; 5])
//!     .bandwidth(5.0)
//!     .build()
//!     .unwrap();
//!
//! // Any feasible allocation can be scored:
//! let naive = vec![1.0; 5];
//! let pf = perceived_freshness(problem.access_probs(), problem.change_rates(), &naive);
//! assert!(pf > 0.0 && pf < 1.0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod access;
pub mod audit;
pub mod error;
pub mod estimate;
pub mod exec;
pub mod freshness;
pub mod json;
pub mod numeric;
pub mod policy;
pub mod problem;
pub mod profile;
pub mod schedule;
pub mod selection;
pub mod shard;
pub mod soa;
pub mod topology;

pub use audit::{AuditReport, AuditViolation, SolutionAudit, ViolationKind};
pub use error::{CoreError, Result};
pub use exec::Executor;
pub use policy::SyncPolicy;
pub use problem::{Element, Problem, Solution};
pub use shard::ShardedProblem;
pub use soa::{ColumnsRef, PackedColumns, ProblemColumns};
pub use topology::{TieredSchedule, Topology, TopologyBuilder};
