//! The bandwidth-allocation problem: elements, budgets, and solutions.
//!
//! The paper's **Core Problem** (§2.1): given change frequencies `λᵢ` and
//! access probabilities `pᵢ`, find sync frequencies `fᵢ ≥ 0` maximizing
//! `Σ pᵢ·F̄(fᵢ, λᵢ)` subject to `Σ fᵢ = B`.
//!
//! The **Extended Problem** (§5.1) adds object sizes `sᵢ` and replaces the
//! constraint with `Σ sᵢ·fᵢ ≤ B` — one refresh of a 3-unit object costs 3
//! units of bandwidth.
//!
//! [`Problem`] carries both forms (the core problem is the extended problem
//! with all sizes 1). Solvers live in `freshen-solver`; heuristics in
//! `freshen-heuristics`; both consume and produce the types defined here.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::exec::Executor;
use crate::freshness::{general_freshness, perceived_freshness};
use crate::numeric::neumaier_sum;
use crate::policy::SyncPolicy;

/// Tolerance used when checking that access probabilities sum to one.
pub const PROB_SUM_TOL: f64 = 1e-6;

/// One mirrored object, as the scheduler sees it.
///
/// This is a convenience view; [`Problem`] stores the same data in
/// structure-of-arrays form for cache-friendly bulk math.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Element {
    /// Index of the element within the problem.
    pub id: usize,
    /// Poisson change frequency at the source (changes per period).
    pub change_rate: f64,
    /// Aggregate access probability from the master profile.
    pub access_prob: f64,
    /// Object size in bandwidth units (1.0 in the fixed-size core problem).
    pub size: f64,
}

/// An instance of the (core or extended) freshening problem.
///
/// Invariants enforced at construction:
/// * all vectors have the same non-zero length;
/// * `λᵢ ≥ 0`, `pᵢ ≥ 0`, `sᵢ > 0`, all finite;
/// * `Σ pᵢ = 1 ± 1e-6` (use [`ProblemBuilder::access_weights`] to have the
///   builder normalize raw weights for you);
/// * bandwidth `B > 0` and finite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    change_rates: Vec<f64>,
    access_probs: Vec<f64>,
    sizes: Vec<f64>,
    bandwidth: f64,
    uniform_sizes: bool,
    /// Per-poll monetary cost `cᵢ` of refreshing element `i` once.
    /// `None` means the uniform core-problem cost of 1.0 per poll.
    #[serde(default)]
    costs: Option<Vec<f64>>,
}

impl Problem {
    /// Start building a problem.
    pub fn builder() -> ProblemBuilder {
        ProblemBuilder::default()
    }

    /// Number of elements `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.change_rates.len()
    }

    /// True when the problem has no elements (never constructible through
    /// the builder, but kept for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.change_rates.is_empty()
    }

    /// Change frequencies `λᵢ` (per period).
    #[inline]
    pub fn change_rates(&self) -> &[f64] {
        &self.change_rates
    }

    /// Access probabilities `pᵢ` (sum to 1).
    #[inline]
    pub fn access_probs(&self) -> &[f64] {
        &self.access_probs
    }

    /// Object sizes `sᵢ` in bandwidth units.
    #[inline]
    pub fn sizes(&self) -> &[f64] {
        &self.sizes
    }

    /// Total sync bandwidth `B` per period: refresh *count* when sizes are
    /// uniform at 1, byte-bandwidth otherwise.
    #[inline]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// True when every size equals 1.0 — i.e. this is the paper's Core
    /// Problem and bandwidth is simply a refresh count.
    #[inline]
    pub fn has_uniform_sizes(&self) -> bool {
        self.uniform_sizes
    }

    /// Per-poll costs `cᵢ`, when an explicit cost column was provided.
    /// `None` means every poll costs the uniform 1.0.
    #[inline]
    pub fn poll_costs(&self) -> Option<&[f64]> {
        self.costs.as_deref()
    }

    /// Per-poll cost of element `i` (1.0 when no cost column was set).
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    #[inline]
    pub fn poll_cost(&self, i: usize) -> f64 {
        match &self.costs {
            Some(c) => c[i],
            None => {
                assert!(i < self.len(), "poll_cost index out of bounds");
                1.0
            }
        }
    }

    /// True when every poll costs the same 1.0 — either because no cost
    /// column was set or because the provided column is all-ones.
    #[inline]
    pub fn has_uniform_costs(&self) -> bool {
        match &self.costs {
            Some(c) => c.iter().all(|&x| x == 1.0),
            None => true,
        }
    }

    /// Total per-period poll spend of an allocation: `Σ cᵢ·fᵢ`
    /// (compensated summation, matching [`bandwidth_used`]).
    ///
    /// [`bandwidth_used`]: Problem::bandwidth_used
    pub fn cost_used(&self, freqs: &[f64]) -> f64 {
        assert_eq!(freqs.len(), self.len(), "freqs length mismatch");
        match &self.costs {
            Some(c) => neumaier_sum(c.iter().zip(freqs).map(|(&c, &f)| c * f)),
            None => neumaier_sum(freqs.iter().copied()),
        }
    }

    /// Element view at index `i`.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    pub fn element(&self, i: usize) -> Element {
        Element {
            id: i,
            change_rate: self.change_rates[i],
            access_prob: self.access_probs[i],
            size: self.sizes[i],
        }
    }

    /// Iterate over element views.
    pub fn elements(&self) -> impl Iterator<Item = Element> + '_ {
        (0..self.len()).map(move |i| self.element(i))
    }

    /// Bandwidth consumed by an allocation: `Σ sᵢ·fᵢ` (compensated
    /// summation, so million-element budgets don't drift).
    pub fn bandwidth_used(&self, freqs: &[f64]) -> f64 {
        assert_eq!(freqs.len(), self.len(), "freqs length mismatch");
        neumaier_sum(self.sizes.iter().zip(freqs).map(|(&s, &f)| s * f))
    }

    /// Check an allocation for feasibility: non-negative, finite, and within
    /// the bandwidth budget (to relative tolerance `tol`).
    pub fn is_feasible(&self, freqs: &[f64], tol: f64) -> bool {
        freqs.len() == self.len()
            && freqs.iter().all(|f| f.is_finite() && *f >= 0.0)
            && self.bandwidth_used(freqs) <= self.bandwidth * (1.0 + tol)
    }

    /// Perceived freshness of an allocation against this problem's profile
    /// (Fixed-Order policy, the paper's default).
    pub fn perceived_freshness(&self, freqs: &[f64]) -> f64 {
        perceived_freshness(&self.access_probs, &self.change_rates, freqs)
    }

    /// Perceived freshness under an explicit synchronization policy.
    pub fn perceived_freshness_with(&self, policy: SyncPolicy, freqs: &[f64]) -> f64 {
        policy.perceived_freshness(&self.access_probs, &self.change_rates, freqs)
    }

    /// Chunked-parallel perceived freshness (Fixed-Order policy). Produces
    /// the same result at any worker count — see [`crate::exec`] for the
    /// determinism rule.
    pub fn perceived_freshness_exec(&self, freqs: &[f64], executor: &Executor) -> f64 {
        self.perceived_freshness_with_exec(SyncPolicy::FixedOrder, freqs, executor)
    }

    /// Chunked-parallel perceived freshness under an explicit policy.
    pub fn perceived_freshness_with_exec(
        &self,
        policy: SyncPolicy,
        freqs: &[f64],
        executor: &Executor,
    ) -> f64 {
        policy.perceived_freshness_exec(&self.access_probs, &self.change_rates, freqs, executor)
    }

    /// Interest-blind average freshness of an allocation (Definition 2).
    pub fn general_freshness(&self, freqs: &[f64]) -> f64 {
        general_freshness(&self.change_rates, freqs)
    }

    /// A copy of this problem with uniform access probabilities — the
    /// objective optimized by the paper's **GF technique** (Cho &
    /// Garcia-Molina's interest-blind scheduler).
    pub fn with_uniform_interest(&self) -> Problem {
        let n = self.len();
        Problem {
            change_rates: self.change_rates.clone(),
            access_probs: vec![1.0 / n as f64; n],
            sizes: self.sizes.clone(),
            bandwidth: self.bandwidth,
            uniform_sizes: self.uniform_sizes,
            costs: self.costs.clone(),
        }
    }

    /// A copy of this problem with every size reset to 1 (the core-problem
    /// view of an extended problem). Used for the paper's Figure 10
    /// comparison of size-aware vs size-blind schedules.
    pub fn with_uniform_sizes(&self) -> Problem {
        Problem {
            change_rates: self.change_rates.clone(),
            access_probs: self.access_probs.clone(),
            sizes: vec![1.0; self.len()],
            bandwidth: self.bandwidth,
            uniform_sizes: true,
            costs: self.costs.clone(),
        }
    }

    /// Restrict the problem to a subset of element indices, renormalizing
    /// access probabilities over the subset. Used by mirror-content
    /// selection (§7 future work) and by partition-local subproblems.
    ///
    /// Returns an error when `indices` is empty, out of bounds, or selects
    /// elements whose total access probability is zero.
    pub fn restrict_to(&self, indices: &[usize], bandwidth: f64) -> Result<Problem> {
        if indices.is_empty() {
            return Err(CoreError::Empty);
        }
        let mut lam = Vec::with_capacity(indices.len());
        let mut p = Vec::with_capacity(indices.len());
        let mut s = Vec::with_capacity(indices.len());
        let mut c = self
            .costs
            .as_ref()
            .map(|_| Vec::with_capacity(indices.len()));
        for &i in indices {
            if i >= self.len() {
                return Err(CoreError::InvalidValue {
                    what: "restrict_to index",
                    index: Some(i),
                    value: i as f64,
                });
            }
            lam.push(self.change_rates[i]);
            p.push(self.access_probs[i]);
            s.push(self.sizes[i]);
            if let (Some(sub), Some(full)) = (c.as_mut(), self.costs.as_ref()) {
                sub.push(full[i]);
            }
        }
        let total = neumaier_sum(p.iter().copied());
        if total <= 0.0 {
            return Err(CoreError::ProbabilityNotNormalized { sum: total });
        }
        for w in &mut p {
            *w /= total;
        }
        let mut builder = Problem::builder()
            .change_rates(lam)
            .access_probs(p)
            .sizes(s)
            .bandwidth(bandwidth);
        if let Some(sub) = c {
            builder = builder.costs(sub);
        }
        builder.build()
    }
}

/// Builder for [`Problem`]; validates every invariant on [`build`].
///
/// [`build`]: ProblemBuilder::build
#[derive(Debug, Default, Clone)]
pub struct ProblemBuilder {
    change_rates: Vec<f64>,
    access_probs: Vec<f64>,
    sizes: Option<Vec<f64>>,
    costs: Option<Vec<f64>>,
    bandwidth: f64,
    normalize: bool,
}

impl ProblemBuilder {
    /// Set the per-element change frequencies `λᵢ`.
    pub fn change_rates(mut self, rates: Vec<f64>) -> Self {
        self.change_rates = rates;
        self
    }

    /// Set access probabilities `pᵢ`; must sum to 1.
    pub fn access_probs(mut self, probs: Vec<f64>) -> Self {
        self.access_probs = probs;
        self.normalize = false;
        self
    }

    /// Set raw (unnormalized) access weights; the builder divides by their
    /// sum. Convenient when the profile is a frequency count.
    pub fn access_weights(mut self, weights: Vec<f64>) -> Self {
        self.access_probs = weights;
        self.normalize = true;
        self
    }

    /// Set object sizes; omit for the fixed-size core problem (all 1.0).
    pub fn sizes(mut self, sizes: Vec<f64>) -> Self {
        self.sizes = Some(sizes);
        self
    }

    /// Set per-poll costs `cᵢ`; omit for the uniform-cost problem
    /// (every poll costs 1.0). Costs must be finite and non-negative —
    /// a zero cost marks an element whose refreshes are free.
    pub fn costs(mut self, costs: Vec<f64>) -> Self {
        self.costs = Some(costs);
        self
    }

    /// Set the bandwidth budget `B` per period.
    pub fn bandwidth(mut self, b: f64) -> Self {
        self.bandwidth = b;
        self
    }

    /// Validate and construct the [`Problem`].
    pub fn build(self) -> Result<Problem> {
        let n = self.change_rates.len();
        if n == 0 {
            return Err(CoreError::Empty);
        }
        if self.access_probs.len() != n {
            return Err(CoreError::LengthMismatch {
                what: "access_probs",
                expected: n,
                actual: self.access_probs.len(),
            });
        }
        let sizes = self.sizes.unwrap_or_else(|| vec![1.0; n]);
        if sizes.len() != n {
            return Err(CoreError::LengthMismatch {
                what: "sizes",
                expected: n,
                actual: sizes.len(),
            });
        }
        for (i, &l) in self.change_rates.iter().enumerate() {
            if !l.is_finite() || l < 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "change_rates",
                    index: Some(i),
                    value: l,
                });
            }
        }
        let mut probs = self.access_probs;
        for (i, &p) in probs.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "access_probs",
                    index: Some(i),
                    value: p,
                });
            }
        }
        // Compensated sum: naive accumulation over 10⁶ probabilities can
        // drift by the same order as PROB_SUM_TOL itself.
        let sum = neumaier_sum(probs.iter().copied());
        if self.normalize {
            if sum <= 0.0 {
                return Err(CoreError::ProbabilityNotNormalized { sum });
            }
            for p in &mut probs {
                *p /= sum;
            }
        } else if (sum - 1.0).abs() > PROB_SUM_TOL {
            return Err(CoreError::ProbabilityNotNormalized { sum });
        }
        let mut uniform_sizes = true;
        for (i, &s) in sizes.iter().enumerate() {
            if !s.is_finite() || s <= 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "sizes",
                    index: Some(i),
                    value: s,
                });
            }
            if s != 1.0 {
                uniform_sizes = false;
            }
        }
        if let Some(costs) = &self.costs {
            if costs.len() != n {
                return Err(CoreError::LengthMismatch {
                    what: "costs",
                    expected: n,
                    actual: costs.len(),
                });
            }
            for (i, &c) in costs.iter().enumerate() {
                if !c.is_finite() || c < 0.0 {
                    return Err(CoreError::InvalidValue {
                        what: "costs",
                        index: Some(i),
                        value: c,
                    });
                }
            }
        }
        if !self.bandwidth.is_finite() || self.bandwidth <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "bandwidth",
                index: None,
                value: self.bandwidth,
            });
        }
        Ok(Problem {
            change_rates: self.change_rates,
            access_probs: probs,
            sizes,
            bandwidth: self.bandwidth,
            uniform_sizes,
            costs: self.costs,
        })
    }
}

/// The output of a solver or heuristic: an allocation plus bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Per-element sync frequencies `fᵢ` (per period).
    pub frequencies: Vec<f64>,
    /// Perceived freshness achieved, `Σ pᵢ F̄(λᵢ, fᵢ)`.
    pub perceived_freshness: f64,
    /// Interest-blind average freshness achieved.
    pub general_freshness: f64,
    /// Bandwidth consumed, `Σ sᵢ fᵢ`.
    pub bandwidth_used: f64,
    /// The Lagrange multiplier `μ` at the solution, when the producing
    /// algorithm computes one (exact solvers do; heuristics report the
    /// multiplier of their reduced problem).
    pub multiplier: Option<f64>,
    /// The cost weight `γ` the producing solve priced polls at: the fixed
    /// `--poll-cost` weight in cost-aware mode, or the cost-budget dual
    /// found by [`solve_cost_budget`]-style outer iterations. `None` for
    /// cost-blind solves.
    ///
    /// [`solve_cost_budget`]: https://docs.rs/freshen-solver
    #[serde(default)]
    pub cost_multiplier: Option<f64>,
    /// Iterations the producing algorithm spent.
    pub iterations: usize,
}

impl Solution {
    /// Score an allocation against a problem, producing a [`Solution`]
    /// record with metrics filled in (Fixed-Order policy).
    pub fn evaluate(problem: &Problem, frequencies: Vec<f64>) -> Solution {
        Self::evaluate_with_policy(problem, frequencies, SyncPolicy::FixedOrder)
    }

    /// Score an allocation under an explicit synchronization policy.
    pub fn evaluate_with_policy(
        problem: &Problem,
        frequencies: Vec<f64>,
        policy: SyncPolicy,
    ) -> Solution {
        assert_eq!(
            frequencies.len(),
            problem.len(),
            "frequencies length mismatch"
        );
        let pf = problem.perceived_freshness_with(policy, &frequencies);
        let gf = {
            let n = problem.len() as f64;
            let uniform = vec![1.0 / n; problem.len()];
            policy.perceived_freshness(&uniform, problem.change_rates(), &frequencies)
        };
        let used = problem.bandwidth_used(&frequencies);
        Solution {
            frequencies,
            perceived_freshness: pf,
            general_freshness: gf,
            bandwidth_used: used,
            multiplier: None,
            cost_multiplier: None,
            iterations: 0,
        }
    }

    /// Score an allocation with chunked-parallel PF/GF evaluation. The
    /// metrics equal [`evaluate_with_policy`](Self::evaluate_with_policy)
    /// up to the fixed-chunk reduction order and are identical at any
    /// worker count.
    pub fn evaluate_with_policy_exec(
        problem: &Problem,
        frequencies: Vec<f64>,
        policy: SyncPolicy,
        executor: &Executor,
    ) -> Solution {
        assert_eq!(
            frequencies.len(),
            problem.len(),
            "frequencies length mismatch"
        );
        let pf = problem.perceived_freshness_with_exec(policy, &frequencies, executor);
        let gf = policy.mean_freshness_exec(problem.change_rates(), &frequencies, executor);
        let used = problem.bandwidth_used(&frequencies);
        Solution {
            frequencies,
            perceived_freshness: pf,
            general_freshness: gf,
            bandwidth_used: used,
            multiplier: None,
            cost_multiplier: None,
            iterations: 0,
        }
    }

    /// Number of elements receiving zero bandwidth ("starved" objects —
    /// the paper's §7 observes many objects legitimately get none).
    pub fn starved_count(&self) -> usize {
        self.frequencies.iter().filter(|f| **f <= 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Problem {
        Problem::builder()
            .change_rates(vec![1.0, 2.0, 3.0, 4.0, 5.0])
            .access_probs(vec![0.2; 5])
            .bandwidth(5.0)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_happy_path() {
        let p = toy();
        assert_eq!(p.len(), 5);
        assert!(p.has_uniform_sizes());
        assert_eq!(p.bandwidth(), 5.0);
    }

    #[test]
    fn builder_rejects_empty() {
        let err = Problem::builder().bandwidth(1.0).build().unwrap_err();
        assert_eq!(err, CoreError::Empty);
    }

    #[test]
    fn builder_rejects_length_mismatch() {
        let err = Problem::builder()
            .change_rates(vec![1.0, 2.0])
            .access_probs(vec![1.0])
            .bandwidth(1.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::LengthMismatch {
                what: "access_probs",
                ..
            }
        ));
    }

    #[test]
    fn builder_rejects_negative_rate() {
        let err = Problem::builder()
            .change_rates(vec![1.0, -2.0])
            .access_probs(vec![0.5, 0.5])
            .bandwidth(1.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidValue {
                what: "change_rates",
                index: Some(1),
                ..
            }
        ));
    }

    #[test]
    fn builder_rejects_unnormalized_probs() {
        let err = Problem::builder()
            .change_rates(vec![1.0, 2.0])
            .access_probs(vec![0.5, 0.6])
            .bandwidth(1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::ProbabilityNotNormalized { .. }));
    }

    #[test]
    fn builder_normalizes_weights() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 2.0, 3.0])
            .access_weights(vec![10.0, 20.0, 30.0])
            .bandwidth(2.0)
            .build()
            .unwrap();
        let probs = p.access_probs();
        assert!((probs[0] - 1.0 / 6.0).abs() < 1e-12);
        assert!((probs[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_zero_weight_sum() {
        let err = Problem::builder()
            .change_rates(vec![1.0])
            .access_weights(vec![0.0])
            .bandwidth(1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::ProbabilityNotNormalized { .. }));
    }

    #[test]
    fn builder_rejects_zero_size() {
        let err = Problem::builder()
            .change_rates(vec![1.0])
            .access_probs(vec![1.0])
            .sizes(vec![0.0])
            .bandwidth(1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidValue { what: "sizes", .. }));
    }

    #[test]
    fn builder_rejects_bad_bandwidth() {
        for b in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = Problem::builder()
                .change_rates(vec![1.0])
                .access_probs(vec![1.0])
                .bandwidth(b)
                .build()
                .unwrap_err();
            assert!(matches!(
                err,
                CoreError::InvalidValue {
                    what: "bandwidth",
                    ..
                }
            ));
        }
    }

    #[test]
    fn uniform_size_detection() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 1.0])
            .access_probs(vec![0.5, 0.5])
            .sizes(vec![1.0, 2.0])
            .bandwidth(1.0)
            .build()
            .unwrap();
        assert!(!p.has_uniform_sizes());
        assert!(p.with_uniform_sizes().has_uniform_sizes());
    }

    #[test]
    fn bandwidth_used_weights_by_size() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 1.0])
            .access_probs(vec![0.5, 0.5])
            .sizes(vec![1.0, 3.0])
            .bandwidth(10.0)
            .build()
            .unwrap();
        assert_eq!(p.bandwidth_used(&[2.0, 2.0]), 8.0);
    }

    #[test]
    fn feasibility_checks() {
        let p = toy();
        assert!(p.is_feasible(&[1.0; 5], 1e-9));
        assert!(!p.is_feasible(&[2.0; 5], 1e-9)); // over budget
        assert!(!p.is_feasible(&[1.0; 4], 1e-9)); // wrong length
        assert!(!p.is_feasible(&[1.0, 1.0, 1.0, 1.0, -0.1], 1e-9)); // negative
    }

    #[test]
    fn uniform_interest_flattens_profile() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 2.0])
            .access_probs(vec![0.9, 0.1])
            .bandwidth(1.0)
            .build()
            .unwrap();
        let u = p.with_uniform_interest();
        assert_eq!(u.access_probs(), &[0.5, 0.5]);
        // change rates and bandwidth preserved
        assert_eq!(u.change_rates(), p.change_rates());
        assert_eq!(u.bandwidth(), p.bandwidth());
    }

    #[test]
    fn element_views() {
        let p = toy();
        let e = p.element(2);
        assert_eq!(e.id, 2);
        assert_eq!(e.change_rate, 3.0);
        assert_eq!(e.size, 1.0);
        assert_eq!(p.elements().count(), 5);
    }

    #[test]
    fn restrict_to_renormalizes() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 2.0, 3.0])
            .access_probs(vec![0.2, 0.3, 0.5])
            .bandwidth(3.0)
            .build()
            .unwrap();
        let sub = p.restrict_to(&[1, 2], 2.0).unwrap();
        assert_eq!(sub.len(), 2);
        assert!((sub.access_probs()[0] - 0.375).abs() < 1e-12);
        assert!((sub.access_probs()[1] - 0.625).abs() < 1e-12);
        assert_eq!(sub.bandwidth(), 2.0);
    }

    #[test]
    fn restrict_to_rejects_empty_and_oob() {
        let p = toy();
        assert!(p.restrict_to(&[], 1.0).is_err());
        assert!(p.restrict_to(&[99], 1.0).is_err());
    }

    #[test]
    fn solution_evaluate_fills_metrics() {
        let p = toy();
        let s = Solution::evaluate(&p, vec![1.0; 5]);
        assert!((s.bandwidth_used - 5.0).abs() < 1e-12);
        assert!(s.perceived_freshness > 0.0 && s.perceived_freshness < 1.0);
        assert!(s.general_freshness > 0.0 && s.general_freshness < 1.0);
        // Uniform profile: PF equals GF.
        assert!((s.perceived_freshness - s.general_freshness).abs() < 1e-12);
        assert_eq!(s.starved_count(), 0);
    }

    #[test]
    fn starved_count_counts_zeros() {
        let p = toy();
        let s = Solution::evaluate(&p, vec![0.0, 2.0, 3.0, 0.0, 0.0]);
        assert_eq!(s.starved_count(), 3);
    }

    #[test]
    fn serde_roundtrip() {
        let p = toy();
        let json = serde_json::to_string(&p).unwrap();
        let back: Problem = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn costs_default_to_uniform_one() {
        let p = toy();
        assert!(p.poll_costs().is_none());
        assert!(p.has_uniform_costs());
        assert_eq!(p.poll_cost(3), 1.0);
        // With no cost column, spend is just Σ fᵢ.
        assert_eq!(p.cost_used(&[1.0, 2.0, 3.0, 4.0, 5.0]), 15.0);
    }

    #[test]
    fn explicit_costs_are_validated_and_used() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 2.0])
            .access_probs(vec![0.5, 0.5])
            .costs(vec![0.5, 3.0])
            .bandwidth(2.0)
            .build()
            .unwrap();
        assert!(!p.has_uniform_costs());
        assert_eq!(p.poll_cost(0), 0.5);
        assert_eq!(p.cost_used(&[2.0, 1.0]), 4.0);
    }

    #[test]
    fn builder_rejects_bad_costs() {
        for bad in [vec![1.0], vec![-1.0, 1.0], vec![f64::NAN, 1.0]] {
            let err = Problem::builder()
                .change_rates(vec![1.0, 2.0])
                .access_probs(vec![0.5, 0.5])
                .costs(bad)
                .bandwidth(1.0)
                .build()
                .unwrap_err();
            assert!(matches!(
                err,
                CoreError::LengthMismatch { what: "costs", .. }
                    | CoreError::InvalidValue { what: "costs", .. }
            ));
        }
    }

    #[test]
    fn costs_survive_copies_and_restriction() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 2.0, 3.0])
            .access_probs(vec![0.2, 0.3, 0.5])
            .costs(vec![1.0, 2.0, 4.0])
            .bandwidth(3.0)
            .build()
            .unwrap();
        assert_eq!(
            p.with_uniform_interest().poll_costs(),
            Some(&[1.0, 2.0, 4.0][..])
        );
        assert_eq!(
            p.with_uniform_sizes().poll_costs(),
            Some(&[1.0, 2.0, 4.0][..])
        );
        let sub = p.restrict_to(&[1, 2], 2.0).unwrap();
        assert_eq!(sub.poll_costs(), Some(&[2.0, 4.0][..]));
    }
}
