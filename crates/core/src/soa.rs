//! Structure-of-arrays problem views for the solve→dispatch hot path.
//!
//! [`Problem`] already stores its data column-wise, but every hot loop in
//! the workspace used to walk it through an index indirection
//! (`active[j]` gathers inside each bisection probe) or through the
//! [`Element`](crate::problem::Element) AoS view. At `N = 10⁷` those
//! gathers dominate: each outer-bisection probe touches three `f64`
//! columns through a permutation, so the prefetcher sees random access.
//!
//! This module packages the two layouts the hot paths actually want:
//!
//! * [`ProblemColumns`] — a free, borrowed view of the problem's full
//!   `p`/`λ`/`s` columns, for loops that iterate every element in index
//!   order (simulation scoring, dispatch planning);
//! * [`PackedColumns`] — an owned, densely packed copy of a *subset* (or
//!   permutation) of the columns plus a frequency column `f` and the
//!   stable id permutation that maps packed positions back to original
//!   element indices. The Lagrange solver gathers its active set once
//!   and then runs every water-filling probe over contiguous memory;
//!   [`ShardedProblem`](crate::shard::ShardedProblem) packs the sorted
//!   order so shard slices are true sub-slices.
//!
//! Packing performs the gather exactly once; all later passes are linear
//! sweeps. Iteration order over a packed set equals the order of the ids
//! it was gathered with, so compensated reductions over packed columns
//! are bit-identical to the historical gather-per-probe loops.

use crate::problem::Problem;

/// A borrowed, zero-cost structure-of-arrays view of a problem's columns.
///
/// All three slices share the problem's element indexing and length.
#[derive(Debug, Clone, Copy)]
pub struct ProblemColumns<'a> {
    /// Access probabilities `pᵢ`.
    pub p: &'a [f64],
    /// Change rates `λᵢ`.
    pub lambda: &'a [f64],
    /// Object sizes `sᵢ`.
    pub s: &'a [f64],
}

impl<'a> ProblemColumns<'a> {
    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// True when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }
}

/// A borrowed slice of a [`PackedColumns`]: contiguous sub-columns plus
/// the original element ids for each packed position.
#[derive(Debug, Clone, Copy)]
pub struct ColumnsRef<'a> {
    /// Original element index of each packed position.
    pub ids: &'a [usize],
    /// Access probabilities, packed.
    pub p: &'a [f64],
    /// Change rates, packed.
    pub lambda: &'a [f64],
    /// Sizes, packed.
    pub s: &'a [f64],
    /// Per-poll costs, packed (all 1.0 for cost-blind problems).
    pub c: &'a [f64],
}

impl<'a> ColumnsRef<'a> {
    /// Number of packed elements in this slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// An owned, densely packed structure-of-arrays copy of a subset (or
/// permutation) of a problem's columns, with a mutable frequency column.
///
/// The packed order is exactly the order of the `ids` used to gather, so
/// chunked reductions over packed ranges reproduce the accumulation
/// order of an equivalent `for &i in ids` gather loop bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct PackedColumns {
    ids: Vec<usize>,
    p: Vec<f64>,
    lambda: Vec<f64>,
    s: Vec<f64>,
    c: Vec<f64>,
    f: Vec<f64>,
}

impl PackedColumns {
    /// Gather `ids` out of `problem` into contiguous columns. The
    /// frequency column starts at zero.
    ///
    /// # Panics
    /// Panics when any id is out of bounds.
    pub fn gather(problem: &Problem, ids: &[usize]) -> PackedColumns {
        let (p, lam, s) = (
            problem.access_probs(),
            problem.change_rates(),
            problem.sizes(),
        );
        let c = match problem.poll_costs() {
            Some(costs) => ids.iter().map(|&i| costs[i]).collect(),
            None => vec![1.0; ids.len()],
        };
        PackedColumns {
            ids: ids.to_vec(),
            p: ids.iter().map(|&i| p[i]).collect(),
            lambda: ids.iter().map(|&i| lam[i]).collect(),
            s: ids.iter().map(|&i| s[i]).collect(),
            c,
            f: vec![0.0; ids.len()],
        }
    }

    /// Gather `ids` out of `problem`, seeding the frequency column from a
    /// full-length `seed` vector (`f[k] = seed[ids[k]]`) — the warm-start
    /// layout incremental repair begins from.
    ///
    /// # Panics
    /// Panics when any id is out of bounds for `problem` or `seed`.
    pub fn gather_seeded(problem: &Problem, ids: &[usize], seed: &[f64]) -> PackedColumns {
        let mut packed = Self::gather(problem, ids);
        for (f, &i) in packed.f.iter_mut().zip(ids) {
            *f = seed[i];
        }
        packed
    }

    /// Number of packed elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing was packed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Original element index of each packed position (the stable sort /
    /// gather permutation).
    #[inline]
    pub fn ids(&self) -> &[usize] {
        &self.ids
    }

    /// Packed access probabilities.
    #[inline]
    pub fn p(&self) -> &[f64] {
        &self.p
    }

    /// Packed change rates.
    #[inline]
    pub fn lambda(&self) -> &[f64] {
        &self.lambda
    }

    /// Packed sizes.
    #[inline]
    pub fn s(&self) -> &[f64] {
        &self.s
    }

    /// Packed per-poll costs (all 1.0 for cost-blind problems).
    #[inline]
    pub fn c(&self) -> &[f64] {
        &self.c
    }

    /// Packed frequency column.
    #[inline]
    pub fn f(&self) -> &[f64] {
        &self.f
    }

    /// Mutable packed frequency column.
    #[inline]
    pub fn f_mut(&mut self) -> &mut [f64] {
        &mut self.f
    }

    /// Borrow a contiguous sub-slice of the packed columns (without the
    /// frequency column, which callers usually need mutably).
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> ColumnsRef<'_> {
        ColumnsRef {
            ids: &self.ids[range.clone()],
            p: &self.p[range.clone()],
            lambda: &self.lambda[range.clone()],
            s: &self.s[range.clone()],
            c: &self.c[range],
        }
    }

    /// Borrow the read-only columns together with the mutable frequency
    /// column in one call. Hot loops that refine `f` in place while
    /// reading `p`/`λ`/`s` need all four simultaneously; the split
    /// borrow avoids cloning three `f64` columns per pass (1.9 GB of
    /// copies over a typical repair at `N = 10⁷`).
    pub fn parts_mut(&mut self) -> (ColumnsRef<'_>, &mut [f64]) {
        (
            ColumnsRef {
                ids: &self.ids,
                p: &self.p,
                lambda: &self.lambda,
                s: &self.s,
                c: &self.c,
            },
            &mut self.f,
        )
    }

    /// Scatter the packed frequency column back into a full-length
    /// vector: `out[ids[k]] = f[k]`. Positions not covered by `ids` are
    /// left untouched.
    ///
    /// # Panics
    /// Panics when any id is out of bounds for `out`.
    pub fn scatter_f(&self, out: &mut [f64]) {
        for (&i, &f) in self.ids.iter().zip(&self.f) {
            out[i] = f;
        }
    }
}

impl Problem {
    /// Borrow the problem's columns as a structure-of-arrays view. Free:
    /// the problem already stores its data column-wise.
    #[inline]
    pub fn columns(&self) -> ProblemColumns<'_> {
        ProblemColumns {
            p: self.access_probs(),
            lambda: self.change_rates(),
            s: self.sizes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Problem {
        Problem::builder()
            .change_rates(vec![1.0, 2.0, 3.0, 4.0])
            .access_probs(vec![0.4, 0.3, 0.2, 0.1])
            .sizes(vec![1.0, 2.0, 0.5, 4.0])
            .bandwidth(3.0)
            .build()
            .unwrap()
    }

    #[test]
    fn columns_view_mirrors_problem() {
        let p = toy();
        let cols = p.columns();
        assert_eq!(cols.len(), 4);
        assert!(!cols.is_empty());
        assert_eq!(cols.p, p.access_probs());
        assert_eq!(cols.lambda, p.change_rates());
        assert_eq!(cols.s, p.sizes());
    }

    #[test]
    fn gather_packs_in_id_order() {
        let p = toy();
        let packed = PackedColumns::gather(&p, &[2, 0, 3]);
        assert_eq!(packed.len(), 3);
        assert_eq!(packed.ids(), &[2, 0, 3]);
        assert_eq!(packed.p(), &[0.2, 0.4, 0.1]);
        assert_eq!(packed.lambda(), &[3.0, 1.0, 4.0]);
        assert_eq!(packed.s(), &[0.5, 1.0, 4.0]);
        assert_eq!(packed.f(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn gather_seeded_pulls_previous_frequencies() {
        let p = toy();
        let seed = [10.0, 20.0, 30.0, 40.0];
        let packed = PackedColumns::gather_seeded(&p, &[3, 1], &seed);
        assert_eq!(packed.f(), &[40.0, 20.0]);
    }

    #[test]
    fn slice_is_a_true_subslice() {
        let p = toy();
        let packed = PackedColumns::gather(&p, &[0, 1, 2, 3]);
        let sub = packed.slice(1..3);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.ids, &[1, 2]);
        assert_eq!(sub.p, &packed.p()[1..3]);
        // Pointer identity: the slice borrows, never copies.
        assert!(std::ptr::eq(sub.p.as_ptr(), packed.p()[1..3].as_ptr()));
    }

    #[test]
    fn scatter_writes_back_through_the_permutation() {
        let p = toy();
        let mut packed = PackedColumns::gather(&p, &[2, 0]);
        packed.f_mut()[0] = 7.0;
        packed.f_mut()[1] = 9.0;
        let mut out = vec![0.0; 4];
        packed.scatter_f(&mut out);
        assert_eq!(out, vec![9.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn parts_mut_splits_without_copying() {
        let p = toy();
        let mut packed = PackedColumns::gather(&p, &[1, 3]);
        let p_ptr = packed.p().as_ptr();
        let (ro, f) = packed.parts_mut();
        assert_eq!(ro.ids, &[1, 3]);
        assert!(std::ptr::eq(ro.p.as_ptr(), p_ptr));
        f[0] = 5.0;
        assert_eq!(packed.f(), &[5.0, 0.0]);
    }

    #[test]
    fn gather_packs_costs_defaulting_to_one() {
        let p = toy();
        let packed = PackedColumns::gather(&p, &[2, 0]);
        assert_eq!(packed.c(), &[1.0, 1.0]);
        let costly = Problem::builder()
            .change_rates(vec![1.0, 2.0, 3.0, 4.0])
            .access_probs(vec![0.4, 0.3, 0.2, 0.1])
            .costs(vec![5.0, 6.0, 7.0, 8.0])
            .bandwidth(3.0)
            .build()
            .unwrap();
        let packed = PackedColumns::gather(&costly, &[2, 0, 3]);
        assert_eq!(packed.c(), &[7.0, 5.0, 8.0]);
        assert_eq!(packed.slice(1..3).c, &[5.0, 8.0]);
    }

    #[test]
    fn empty_pack_is_fine() {
        let p = toy();
        let packed = PackedColumns::gather(&p, &[]);
        assert!(packed.is_empty());
        let mut out = vec![1.0; 4];
        packed.scatter_f(&mut out);
        assert_eq!(out, vec![1.0; 4]);
    }
}
