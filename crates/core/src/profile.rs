//! User profiles and their aggregation into the master profile.
//!
//! The paper (§2): each user submits a *profile* — "a declarative
//! specification of the relative importance of each copy in the mirror",
//! modeled as a distribution of access frequencies. The mirror aggregates
//! all user profiles into one **master profile**, a combined frequency
//! distribution; scaled by total accesses it becomes the access probability
//! vector `p` the scheduler consumes.
//!
//! Two refinements the paper calls out are implemented here:
//! * individual profiles can be **weighted** before aggregation "so as to
//!   give higher priority to more important users (e.g., generals or higher
//!   paying customers)";
//! * a profile can be **learned from the request log** ("a simple learning
//!   algorithm that monitors the system request log", §7) — see
//!   [`ProfileEstimator`].

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};

/// A single user's interest profile over the `N` mirrored elements,
/// expressed as non-negative access frequencies (accesses per period).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Access frequency per element; length must equal the mirror size.
    frequencies: Vec<f64>,
}

impl UserProfile {
    /// Build a profile from raw access frequencies.
    ///
    /// Frequencies must be finite and non-negative, with at least one
    /// strictly positive entry.
    pub fn new(frequencies: Vec<f64>) -> Result<Self> {
        if frequencies.is_empty() {
            return Err(CoreError::Empty);
        }
        let mut any_positive = false;
        for (i, &v) in frequencies.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "profile frequencies",
                    index: Some(i),
                    value: v,
                });
            }
            if v > 0.0 {
                any_positive = true;
            }
        }
        if !any_positive {
            return Err(CoreError::ProbabilityNotNormalized { sum: 0.0 });
        }
        Ok(UserProfile { frequencies })
    }

    /// A profile that accesses exactly one element.
    pub fn single_interest(n: usize, element: usize) -> Result<Self> {
        if element >= n {
            return Err(CoreError::InvalidValue {
                what: "single_interest element",
                index: Some(element),
                value: element as f64,
            });
        }
        let mut f = vec![0.0; n];
        f[element] = 1.0;
        UserProfile::new(f)
    }

    /// Number of elements this profile covers.
    pub fn len(&self) -> usize {
        self.frequencies.len()
    }

    /// True when the profile covers zero elements (unreachable via `new`).
    pub fn is_empty(&self) -> bool {
        self.frequencies.is_empty()
    }

    /// Raw access frequencies.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Total accesses per period this user generates.
    pub fn total_rate(&self) -> f64 {
        self.frequencies.iter().sum()
    }

    /// This user's access *probabilities* (frequencies normalized to 1).
    pub fn probabilities(&self) -> Vec<f64> {
        let total = self.total_rate();
        self.frequencies.iter().map(|f| f / total).collect()
    }
}

/// The aggregated master profile — "a combined frequency distribution for
/// all users" (§2). Feed [`MasterProfile::access_probs`] into
/// [`crate::problem::ProblemBuilder::access_probs`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MasterProfile {
    combined: Vec<f64>,
    users: usize,
}

impl MasterProfile {
    /// Aggregate user profiles with equal priority.
    pub fn aggregate(profiles: &[UserProfile]) -> Result<Self> {
        Self::aggregate_weighted(profiles, &vec![1.0; profiles.len()])
    }

    /// Aggregate user profiles with per-user priority weights (§2: "so as
    /// to give higher priority to more important users").
    ///
    /// Each user's frequency vector is multiplied by their weight and the
    /// results are summed. Weights must be finite and non-negative with a
    /// positive sum; profile lengths must agree.
    pub fn aggregate_weighted(profiles: &[UserProfile], weights: &[f64]) -> Result<Self> {
        if profiles.is_empty() {
            return Err(CoreError::Empty);
        }
        if weights.len() != profiles.len() {
            return Err(CoreError::LengthMismatch {
                what: "profile weights",
                expected: profiles.len(),
                actual: weights.len(),
            });
        }
        let n = profiles[0].len();
        let mut combined = vec![0.0; n];
        let mut weight_sum = 0.0;
        for (u, (profile, &w)) in profiles.iter().zip(weights).enumerate() {
            if profile.len() != n {
                return Err(CoreError::LengthMismatch {
                    what: "profile length",
                    expected: n,
                    actual: profile.len(),
                });
            }
            if !w.is_finite() || w < 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "profile weight",
                    index: Some(u),
                    value: w,
                });
            }
            weight_sum += w;
            for (c, &f) in combined.iter_mut().zip(profile.frequencies()) {
                *c += w * f;
            }
        }
        if weight_sum <= 0.0 || combined.iter().sum::<f64>() <= 0.0 {
            return Err(CoreError::ProbabilityNotNormalized { sum: 0.0 });
        }
        Ok(MasterProfile {
            combined,
            users: profiles.len(),
        })
    }

    /// Number of mirrored elements the profile covers.
    pub fn len(&self) -> usize {
        self.combined.len()
    }

    /// True when the profile covers zero elements (unreachable normally).
    pub fn is_empty(&self) -> bool {
        self.combined.is_empty()
    }

    /// How many user profiles were aggregated.
    pub fn user_count(&self) -> usize {
        self.users
    }

    /// Combined access frequencies (weighted sums).
    pub fn combined_frequencies(&self) -> &[f64] {
        &self.combined
    }

    /// The access probability vector `p` (`Σ pᵢ = 1`).
    pub fn access_probs(&self) -> Vec<f64> {
        let total: f64 = self.combined.iter().sum();
        self.combined.iter().map(|f| f / total).collect()
    }
}

/// Online profile learner: observes element accesses (e.g. from the mirror's
/// request log) and maintains an exponentially decayed frequency estimate.
///
/// This implements the paper's §7 remark that access patterns can come "from
/// a simple learning algorithm that monitors the system request log". With
/// `decay = 1.0` the estimator degenerates to plain counting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileEstimator {
    counts: Vec<f64>,
    decay: f64,
    observations: u64,
}

impl ProfileEstimator {
    /// Create an estimator over `n` elements with per-observation decay
    /// factor `decay ∈ (0, 1]` applied to all counts before each increment.
    pub fn new(n: usize, decay: f64) -> Result<Self> {
        if n == 0 {
            return Err(CoreError::Empty);
        }
        if !decay.is_finite() || decay <= 0.0 || decay > 1.0 {
            return Err(CoreError::InvalidValue {
                what: "decay",
                index: None,
                value: decay,
            });
        }
        Ok(ProfileEstimator {
            counts: vec![0.0; n],
            decay,
            observations: 0,
        })
    }

    /// Record one access to `element`.
    ///
    /// # Panics
    /// Panics when `element` is out of range.
    pub fn observe(&mut self, element: usize) {
        assert!(element < self.counts.len(), "element out of range");
        if self.decay < 1.0 {
            for c in &mut self.counts {
                *c *= self.decay;
            }
        }
        self.counts[element] += 1.0;
        self.observations += 1;
    }

    /// Record a batch of accesses (indices into the mirror).
    pub fn observe_all(&mut self, elements: &[usize]) {
        for &e in elements {
            self.observe(e);
        }
    }

    /// Number of accesses observed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Current estimate as a master-profile-compatible probability vector,
    /// or `None` before any observation.
    pub fn access_probs(&self) -> Option<Vec<f64>> {
        let total: f64 = self.counts.iter().sum();
        if total <= 0.0 {
            return None;
        }
        Some(self.counts.iter().map(|c| c / total).collect())
    }

    /// Current estimate smoothed with a uniform prior: each element gets
    /// pseudo-count `alpha`. Guarantees strictly positive probabilities,
    /// which keeps never-yet-accessed objects from being starved forever
    /// purely due to a cold log.
    pub fn access_probs_smoothed(&self, alpha: f64) -> Vec<f64> {
        assert!(alpha > 0.0, "alpha must be positive");
        let total: f64 = self.counts.iter().sum::<f64>() + alpha * self.counts.len() as f64;
        self.counts.iter().map(|c| (c + alpha) / total).collect()
    }

    /// The decayed per-element counts — the checkpointable state.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Rebuild an estimator from checkpointed state. `decay` comes from
    /// configuration; `counts`/`observations` are what
    /// [`counts`](Self::counts) and
    /// [`observations`](Self::observations) exported.
    pub fn from_state(counts: Vec<f64>, decay: f64, observations: u64) -> Result<Self> {
        if counts.is_empty() {
            return Err(CoreError::Empty);
        }
        if !decay.is_finite() || decay <= 0.0 || decay > 1.0 {
            return Err(CoreError::InvalidValue {
                what: "decay",
                index: None,
                value: decay,
            });
        }
        for (i, &c) in counts.iter().enumerate() {
            if !c.is_finite() || c < 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "profile count",
                    index: Some(i),
                    value: c,
                });
            }
        }
        Ok(ProfileEstimator {
            counts,
            decay,
            observations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_profile_validation() {
        assert!(UserProfile::new(vec![]).is_err());
        assert!(UserProfile::new(vec![0.0, 0.0]).is_err());
        assert!(UserProfile::new(vec![1.0, -1.0]).is_err());
        assert!(UserProfile::new(vec![1.0, f64::NAN]).is_err());
        assert!(UserProfile::new(vec![1.0, 0.0]).is_ok());
    }

    #[test]
    fn user_profile_probabilities_normalize() {
        let u = UserProfile::new(vec![1.0, 3.0]).unwrap();
        assert_eq!(u.probabilities(), vec![0.25, 0.75]);
        assert_eq!(u.total_rate(), 4.0);
    }

    #[test]
    fn single_interest_profile() {
        let u = UserProfile::single_interest(3, 1).unwrap();
        assert_eq!(u.frequencies(), &[0.0, 1.0, 0.0]);
        assert!(UserProfile::single_interest(3, 3).is_err());
    }

    #[test]
    fn aggregate_equal_weights_sums_frequencies() {
        let a = UserProfile::new(vec![2.0, 0.0]).unwrap();
        let b = UserProfile::new(vec![0.0, 2.0]).unwrap();
        let m = MasterProfile::aggregate(&[a, b]).unwrap();
        assert_eq!(m.combined_frequencies(), &[2.0, 2.0]);
        assert_eq!(m.access_probs(), vec![0.5, 0.5]);
        assert_eq!(m.user_count(), 2);
    }

    #[test]
    fn aggregate_weighted_prioritizes_users() {
        // The "general" outweighs the private 3:1.
        let general = UserProfile::new(vec![1.0, 0.0]).unwrap();
        let private = UserProfile::new(vec![0.0, 1.0]).unwrap();
        let m = MasterProfile::aggregate_weighted(&[general, private], &[3.0, 1.0]).unwrap();
        assert_eq!(m.access_probs(), vec![0.75, 0.25]);
    }

    #[test]
    fn aggregate_rejects_mismatched_lengths() {
        let a = UserProfile::new(vec![1.0, 1.0]).unwrap();
        let b = UserProfile::new(vec![1.0]).unwrap();
        assert!(MasterProfile::aggregate(&[a, b]).is_err());
    }

    #[test]
    fn aggregate_rejects_bad_weights() {
        let a = UserProfile::new(vec![1.0]).unwrap();
        let b = UserProfile::new(vec![1.0]).unwrap();
        assert!(MasterProfile::aggregate_weighted(&[a.clone(), b.clone()], &[1.0]).is_err());
        assert!(MasterProfile::aggregate_weighted(&[a.clone(), b.clone()], &[-1.0, 1.0]).is_err());
        assert!(MasterProfile::aggregate_weighted(&[a, b], &[0.0, 0.0]).is_err());
    }

    #[test]
    fn aggregate_rejects_empty() {
        assert!(MasterProfile::aggregate(&[]).is_err());
    }

    #[test]
    fn zero_weight_user_is_ignored() {
        let a = UserProfile::new(vec![1.0, 0.0]).unwrap();
        let b = UserProfile::new(vec![0.0, 1.0]).unwrap();
        let m = MasterProfile::aggregate_weighted(&[a, b], &[1.0, 0.0]).unwrap();
        assert_eq!(m.access_probs(), vec![1.0, 0.0]);
    }

    #[test]
    fn estimator_counts_without_decay() {
        let mut e = ProfileEstimator::new(3, 1.0).unwrap();
        assert!(e.access_probs().is_none());
        e.observe_all(&[0, 0, 0, 1]);
        assert_eq!(e.observations(), 4);
        let p = e.access_probs().unwrap();
        assert_eq!(p, vec![0.75, 0.25, 0.0]);
    }

    #[test]
    fn estimator_decay_forgets_old_interest() {
        let mut e = ProfileEstimator::new(2, 0.5).unwrap();
        // Old interest in element 0 ...
        for _ in 0..10 {
            e.observe(0);
        }
        // ... superseded by recent interest in element 1.
        for _ in 0..10 {
            e.observe(1);
        }
        let p = e.access_probs().unwrap();
        assert!(p[1] > 0.99, "recent interest dominates: {p:?}");
    }

    #[test]
    fn estimator_smoothing_keeps_all_positive() {
        let mut e = ProfileEstimator::new(4, 1.0).unwrap();
        e.observe(2);
        let p = e.access_probs_smoothed(0.1);
        assert!(p.iter().all(|&x| x > 0.0));
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p[2] > p[0]);
    }

    #[test]
    fn estimator_rejects_bad_config() {
        assert!(ProfileEstimator::new(0, 1.0).is_err());
        assert!(ProfileEstimator::new(2, 0.0).is_err());
        assert!(ProfileEstimator::new(2, 1.5).is_err());
    }

    #[test]
    #[should_panic(expected = "element out of range")]
    fn estimator_observe_oob_panics() {
        let mut e = ProfileEstimator::new(2, 1.0).unwrap();
        e.observe(2);
    }
}
