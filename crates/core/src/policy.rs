//! Synchronization-order policies and their freshness laws.
//!
//! The paper adopts the **Fixed Order** policy throughout, citing Cho &
//! Garcia-Molina's result that it beats randomized alternatives. This
//! module makes that choice explicit and testable by also implementing the
//! **Poisson** (memoryless random) policy:
//!
//! | Policy | Sync instants | Time-averaged freshness |
//! |---|---|---|
//! | [`SyncPolicy::FixedOrder`] | evenly spaced, interval `1/f` | `(f/λ)(1 − e^{−λ/f})` |
//! | [`SyncPolicy::Poisson`]    | Poisson process at rate `f`   | `f / (λ + f)` |
//!
//! For every `r = λ/f > 0`, `(1 − e^{−r})/r > 1/(1 + r)`, so Fixed Order
//! strictly dominates — regular spacing wastes no interval being either
//! too early or too late. The ablation binary `exp_policy` and the
//! simulator's [`freshen-sim`](https://docs.rs) Poisson mode quantify the
//! gap end to end.

use serde::{Deserialize, Serialize};

use crate::exec::{Executor, DEFAULT_CHUNK};
use crate::freshness::{freshness_gradient, freshness_second_derivative, steady_state_freshness};
use crate::numeric::NeumaierSum;

/// How refreshes of one element are placed in time, given its frequency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncPolicy {
    /// Refresh at fixed, evenly spaced intervals (the paper's policy).
    #[default]
    FixedOrder,
    /// Refresh at exponentially distributed intervals (memoryless).
    Poisson,
}

impl SyncPolicy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SyncPolicy::FixedOrder => "fixed-order",
            SyncPolicy::Poisson => "poisson",
        }
    }

    /// Time-averaged freshness of an element with change rate `lambda`
    /// refreshed at frequency `f` under this policy.
    #[inline]
    pub fn freshness(&self, lambda: f64, f: f64) -> f64 {
        match self {
            SyncPolicy::FixedOrder => steady_state_freshness(lambda, f),
            SyncPolicy::Poisson => {
                debug_assert!(lambda >= 0.0 && f >= 0.0);
                if lambda <= 0.0 {
                    1.0
                } else if f <= 0.0 {
                    0.0
                } else {
                    f / (lambda + f)
                }
            }
        }
    }

    /// Marginal freshness `∂F̄/∂f` under this policy.
    #[inline]
    pub fn gradient(&self, lambda: f64, f: f64) -> f64 {
        match self {
            SyncPolicy::FixedOrder => freshness_gradient(lambda, f),
            SyncPolicy::Poisson => {
                debug_assert!(lambda > 0.0 && f >= 0.0);
                let d = lambda + f;
                lambda / (d * d)
            }
        }
    }

    /// Second derivative `∂²F̄/∂f²` (non-positive: both policies' freshness
    /// laws are concave in `f`, so the optimization stays convex).
    #[inline]
    pub fn second_derivative(&self, lambda: f64, f: f64) -> f64 {
        match self {
            SyncPolicy::FixedOrder => freshness_second_derivative(lambda, f),
            SyncPolicy::Poisson => {
                debug_assert!(lambda > 0.0 && f >= 0.0);
                let d = lambda + f;
                -2.0 * lambda / (d * d * d)
            }
        }
    }

    /// Time-averaged age under this policy.
    ///
    /// Fixed Order: see [`crate::freshness::steady_state_age`]. Poisson
    /// (memoryless syncing at rate `f`): conditioning on the exponential
    /// time-since-last-sync gives the closed form `Ā = λ / (f·(f + λ))`.
    #[inline]
    pub fn age(&self, lambda: f64, f: f64) -> f64 {
        match self {
            SyncPolicy::FixedOrder => crate::freshness::steady_state_age(lambda, f),
            SyncPolicy::Poisson => {
                debug_assert!(lambda >= 0.0 && f >= 0.0);
                if lambda <= 0.0 {
                    0.0
                } else if f <= 0.0 {
                    f64::INFINITY
                } else {
                    lambda / (f * (f + lambda))
                }
            }
        }
    }

    /// Perceived freshness `Σ wᵢ·F̄(λᵢ, fᵢ)` under this policy
    /// (compensated summation).
    pub fn perceived_freshness(&self, weights: &[f64], lambdas: &[f64], freqs: &[f64]) -> f64 {
        assert_eq!(
            weights.len(),
            lambdas.len(),
            "weights/lambdas length mismatch"
        );
        assert_eq!(weights.len(), freqs.len(), "weights/freqs length mismatch");
        let mut acc = NeumaierSum::new();
        for ((&w, &l), &f) in weights.iter().zip(lambdas).zip(freqs) {
            if w != 0.0 {
                acc.add(w * self.freshness(l, f));
            }
        }
        acc.total()
    }

    /// Chunked-parallel [`perceived_freshness`](Self::perceived_freshness):
    /// per-chunk compensated partials merged in fixed chunk order, so the
    /// result is identical at any worker count.
    pub fn perceived_freshness_exec(
        &self,
        weights: &[f64],
        lambdas: &[f64],
        freqs: &[f64],
        executor: &Executor,
    ) -> f64 {
        assert_eq!(
            weights.len(),
            lambdas.len(),
            "weights/lambdas length mismatch"
        );
        assert_eq!(weights.len(), freqs.len(), "weights/freqs length mismatch");
        executor
            .par_chunks_reduce(
                weights.len(),
                DEFAULT_CHUNK,
                |range| {
                    let mut acc = NeumaierSum::new();
                    for i in range {
                        let w = weights[i];
                        if w != 0.0 {
                            acc.add(w * self.freshness(lambdas[i], freqs[i]));
                        }
                    }
                    acc
                },
                |mut a, b| {
                    a.merge(b);
                    a
                },
            )
            .map_or(0.0, |acc| acc.total())
    }

    /// Chunked-parallel perceived **age** `Σ wᵢ·Ā(λᵢ, fᵢ)` under this
    /// policy, skipping zero-weight elements (whose infinite age at `f = 0`
    /// must not poison the profile-weighted mean).
    pub fn perceived_age_exec(
        &self,
        weights: &[f64],
        lambdas: &[f64],
        freqs: &[f64],
        executor: &Executor,
    ) -> f64 {
        assert_eq!(
            weights.len(),
            lambdas.len(),
            "weights/lambdas length mismatch"
        );
        assert_eq!(weights.len(), freqs.len(), "weights/freqs length mismatch");
        executor
            .par_chunks_reduce(
                weights.len(),
                DEFAULT_CHUNK,
                |range| {
                    let mut acc = NeumaierSum::new();
                    for i in range {
                        let w = weights[i];
                        if w != 0.0 {
                            acc.add(w * self.age(lambdas[i], freqs[i]));
                        }
                    }
                    acc
                },
                |mut a, b| {
                    a.merge(b);
                    a
                },
            )
            .map_or(0.0, |acc| acc.total())
    }

    /// Chunked-parallel unweighted mean freshness (the general-freshness
    /// metric) under this policy.
    pub fn mean_freshness_exec(&self, lambdas: &[f64], freqs: &[f64], executor: &Executor) -> f64 {
        assert_eq!(lambdas.len(), freqs.len(), "lambdas/freqs length mismatch");
        if lambdas.is_empty() {
            return 0.0;
        }
        executor
            .par_chunks_reduce(
                lambdas.len(),
                DEFAULT_CHUNK,
                |range| {
                    let mut acc = NeumaierSum::new();
                    for i in range {
                        acc.add(self.freshness(lambdas[i], freqs[i]));
                    }
                    acc
                },
                |mut a, b| {
                    a.merge(b);
                    a
                },
            )
            .map_or(0.0, |acc| acc.total())
            / lambdas.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_freshness_closed_form() {
        assert_eq!(SyncPolicy::Poisson.freshness(2.0, 2.0), 0.5);
        assert_eq!(SyncPolicy::Poisson.freshness(1.0, 3.0), 0.75);
        assert_eq!(SyncPolicy::Poisson.freshness(1.0, 0.0), 0.0);
        assert_eq!(SyncPolicy::Poisson.freshness(0.0, 5.0), 1.0);
    }

    #[test]
    fn fixed_order_dominates_poisson_everywhere() {
        // (1 − e^{−r})/r > 1/(1+r) for all r > 0.
        for lam in [0.1, 1.0, 5.0, 50.0] {
            for f in [0.01, 0.5, 1.0, 10.0, 100.0] {
                let fo = SyncPolicy::FixedOrder.freshness(lam, f);
                let po = SyncPolicy::Poisson.freshness(lam, f);
                assert!(
                    fo > po,
                    "fixed-order must dominate: λ={lam} f={f}: {fo} vs {po}"
                );
            }
        }
    }

    #[test]
    fn policies_agree_at_extremes() {
        for policy in [SyncPolicy::FixedOrder, SyncPolicy::Poisson] {
            assert_eq!(policy.freshness(3.0, 0.0), 0.0, "{:?}", policy);
            assert!(policy.freshness(3.0, 1e9) > 1.0 - 1e-6);
            assert_eq!(policy.freshness(0.0, 1.0), 1.0);
        }
    }

    #[test]
    fn poisson_gradient_matches_finite_difference() {
        let lam = 2.5;
        for f in [0.1, 1.0, 4.0] {
            let h = 1e-6;
            let num = (SyncPolicy::Poisson.freshness(lam, f + h)
                - SyncPolicy::Poisson.freshness(lam, f - h))
                / (2.0 * h);
            let ana = SyncPolicy::Poisson.gradient(lam, f);
            assert!((num - ana).abs() < 1e-6, "f={f}: {num} vs {ana}");
        }
    }

    #[test]
    fn poisson_second_derivative_matches_finite_difference() {
        let lam = 1.5;
        for f in [0.2, 1.0, 3.0] {
            let h = 1e-5;
            let num = (SyncPolicy::Poisson.gradient(lam, f + h)
                - SyncPolicy::Poisson.gradient(lam, f - h))
                / (2.0 * h);
            let ana = SyncPolicy::Poisson.second_derivative(lam, f);
            assert!((num - ana).abs() < 1e-5, "f={f}: {num} vs {ana}");
        }
    }

    #[test]
    fn both_policies_concave() {
        for policy in [SyncPolicy::FixedOrder, SyncPolicy::Poisson] {
            for f in [0.1, 1.0, 10.0] {
                assert!(policy.second_derivative(2.0, f) < 0.0, "{:?} f={f}", policy);
            }
        }
    }

    #[test]
    fn perceived_freshness_weighted_sum() {
        let pf = SyncPolicy::Poisson.perceived_freshness(&[0.5, 0.5], &[1.0, 1.0], &[1.0, 3.0]);
        assert!((pf - 0.5 * (0.5 + 0.75)).abs() < 1e-12);
    }

    #[test]
    fn poisson_age_closed_form() {
        // λ = f = 2: Ā = 2/(2·4) = 0.25.
        assert!((SyncPolicy::Poisson.age(2.0, 2.0) - 0.25).abs() < 1e-12);
        assert_eq!(SyncPolicy::Poisson.age(0.0, 1.0), 0.0);
        assert_eq!(SyncPolicy::Poisson.age(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn fixed_order_age_beats_poisson_age() {
        // Lower age is better; regular spacing wins here too.
        for lam in [0.5, 2.0, 10.0] {
            for f in [0.5, 1.0, 5.0] {
                assert!(
                    SyncPolicy::FixedOrder.age(lam, f) < SyncPolicy::Poisson.age(lam, f),
                    "λ={lam} f={f}"
                );
            }
        }
    }

    #[test]
    fn default_is_fixed_order() {
        assert_eq!(SyncPolicy::default(), SyncPolicy::FixedOrder);
        assert_eq!(SyncPolicy::default().name(), "fixed-order");
    }
}
