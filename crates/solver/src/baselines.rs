//! Interest-blind baseline refresh policies from related work.
//!
//! These exist so the experiment harness can show where profile-aware
//! scheduling wins:
//!
//! * [`solve_uniform`] — every object refreshed at the same rate (the
//!   naive mirror);
//! * [`solve_proportional`] — refresh rate proportional to change rate,
//!   the policy implied by TTL-style cache coherence (paper ref \[7\]): a
//!   document's time-to-live tracks its change interval, so faster-changing
//!   documents get proportionally more polls;
//! * [`solve_sampling_greedy`] — a simplified version of the
//!   sampling-based policy of Cho & Ntoulas (paper ref \[6\]): objects are
//!   grouped (per "server"), a sample estimates each group's change ratio,
//!   groups are ranked by that ratio, and refreshes are poured greedily
//!   into the highest-ranked groups until the budget runs out.
//!
//! [`solve_grid_search`] is different in kind: not a baseline *policy*
//! but a brute-force *verification oracle* — it enumerates every
//! bandwidth split on a dense grid and keeps the best, with no appeal to
//! KKT theory at all. The differential audit harness uses it to confirm
//! the analytic solvers on small instances.

use freshen_core::error::{CoreError, Result};
use freshen_core::problem::{Problem, Solution};

/// Uniform allocation: `fᵢ = B / Σsⱼ` (each object refreshed equally often;
/// with sizes, the budget is spread by size so it stays feasible).
pub fn solve_uniform(problem: &Problem) -> Solution {
    let total_size: f64 = problem.sizes().iter().sum();
    let f = problem.bandwidth() / total_size;
    Solution::evaluate(problem, vec![f; problem.len()])
}

/// Change-proportional ("TTL-ish") allocation:
/// `fᵢ ∝ λᵢ / sᵢ`, scaled to exactly exhaust the budget.
///
/// Interest-blind *and* — as Cho & Garcia-Molina showed and Table 1
/// reiterates — counterproductive for hopelessly volatile objects, which
/// soak up bandwidth without ever staying fresh.
pub fn solve_proportional(problem: &Problem) -> Solution {
    let weights: Vec<f64> = problem
        .change_rates()
        .iter()
        .zip(problem.sizes())
        .map(|(&l, &s)| l / s)
        .collect();
    let denom: f64 = weights
        .iter()
        .zip(problem.sizes())
        .map(|(&w, &s)| w * s)
        .sum();
    if denom <= 0.0 {
        // Nothing ever changes; refreshing is pointless.
        return Solution::evaluate(problem, vec![0.0; problem.len()]);
    }
    let scale = problem.bandwidth() / denom;
    let freqs: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
    Solution::evaluate(problem, freqs)
}

/// Sampling-based greedy refresh (simplified Cho & Ntoulas).
///
/// `groups[i]` assigns each element to a "server". The policy estimates
/// each group's change *ratio* — the expected fraction of its objects that
/// changed within one period, `mean(1 − e^{−λ})` over the group — ranks
/// groups by it, and assigns each object in rank order one refresh per
/// period until the bandwidth runs out (a partial refresh rate for the
/// group on the boundary).
///
/// Returns an error when `groups` has the wrong length or is empty.
pub fn solve_sampling_greedy(problem: &Problem, groups: &[usize]) -> Result<Solution> {
    if groups.len() != problem.len() {
        return Err(CoreError::LengthMismatch {
            what: "groups",
            expected: problem.len(),
            actual: groups.len(),
        });
    }
    let num_groups = match groups.iter().max() {
        Some(&g) => g + 1,
        None => return Err(CoreError::Empty),
    };
    // Estimated change ratio per group.
    let mut changed = vec![0.0f64; num_groups];
    let mut count = vec![0usize; num_groups];
    for (&g, &lam) in groups.iter().zip(problem.change_rates()) {
        changed[g] += 1.0 - (-lam).exp();
        count[g] += 1;
    }
    let mut ranked: Vec<usize> = (0..num_groups).filter(|&g| count[g] > 0).collect();
    ranked.sort_by(|&a, &b| {
        let ra = changed[a] / count[a] as f64;
        let rb = changed[b] / count[b] as f64;
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
    });

    // Pour bandwidth greedily: each object in the current group gets one
    // refresh per period (costing its size), partial on the boundary group.
    let mut freqs = vec![0.0; problem.len()];
    let mut remaining = problem.bandwidth();
    for &g in &ranked {
        let members: Vec<usize> = (0..problem.len()).filter(|&i| groups[i] == g).collect();
        let group_cost: f64 = members.iter().map(|&i| problem.sizes()[i]).sum();
        if group_cost <= remaining {
            for &i in &members {
                freqs[i] = 1.0;
            }
            remaining -= group_cost;
        } else {
            let fraction = remaining / group_cost;
            for &i in &members {
                freqs[i] = fraction;
            }
            break;
        }
    }
    Ok(Solution::evaluate(problem, freqs))
}

/// Dense grid-search oracle for tiny instances: splits the budget into
/// `steps` equal bandwidth units and exhaustively enumerates every way
/// to distribute them over the elements (`C(steps+n−1, n−1)` feasible
/// points — exponential in `n`, so callers should keep `n ≤ ~6`).
///
/// Exists purely as an independent check on the analytic solvers: it
/// shares no code path and no optimality theory with them, so agreement
/// within the grid's `O(B²/steps²)` resolution is real evidence. The
/// returned solution exhausts the budget exactly (the last element
/// absorbs the remainder of each enumeration).
///
/// Errors on `steps == 0` or `n > 8` (the enumeration would explode).
pub fn solve_grid_search(problem: &Problem, steps: usize) -> Result<Solution> {
    if steps == 0 {
        return Err(CoreError::InvalidConfig(
            "grid search needs at least one step".into(),
        ));
    }
    let n = problem.len();
    if n > 8 {
        return Err(CoreError::InvalidConfig(format!(
            "grid search is an exhaustive oracle for tiny instances (n ≤ 8), got n = {n}"
        )));
    }
    let unit = problem.bandwidth() / steps as f64;
    let mut freqs = vec![0.0f64; n];
    let mut best: Option<(f64, Vec<f64>)> = None;
    let mut evaluated = 0usize;

    // Depth-first enumeration: element i takes k of the remaining units,
    // the last element absorbs whatever is left (budget exhaustion by
    // construction).
    fn descend(
        problem: &Problem,
        unit: f64,
        i: usize,
        remaining: usize,
        freqs: &mut Vec<f64>,
        best: &mut Option<(f64, Vec<f64>)>,
        evaluated: &mut usize,
    ) {
        let n = problem.len();
        if i == n - 1 {
            freqs[i] = remaining as f64 * unit / problem.sizes()[i];
            let pf = problem.perceived_freshness(freqs);
            *evaluated += 1;
            if best.as_ref().is_none_or(|(b, _)| pf > *b) {
                *best = Some((pf, freqs.clone()));
            }
            return;
        }
        for k in 0..=remaining {
            freqs[i] = k as f64 * unit / problem.sizes()[i];
            descend(problem, unit, i + 1, remaining - k, freqs, best, evaluated);
        }
        freqs[i] = 0.0;
    }
    descend(
        problem,
        unit,
        0,
        steps,
        &mut freqs,
        &mut best,
        &mut evaluated,
    );

    let (pf, freqs) = best.expect("grid enumeration visits at least one point");
    debug_assert!(pf.is_finite());
    let mut solution = Solution::evaluate(problem, freqs);
    solution.iterations = evaluated;
    Ok(solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lagrange::LagrangeSolver;

    fn toy() -> Problem {
        Problem::builder()
            .change_rates(vec![1.0, 2.0, 3.0, 4.0, 5.0])
            .access_probs(vec![0.5, 0.2, 0.15, 0.1, 0.05])
            .bandwidth(5.0)
            .build()
            .unwrap()
    }

    #[test]
    fn uniform_spreads_evenly() {
        let sol = solve_uniform(&toy());
        assert!(sol.frequencies.iter().all(|&f| (f - 1.0).abs() < 1e-12));
        assert!((sol.bandwidth_used - 5.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_with_sizes_stays_feasible() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 1.0])
            .access_probs(vec![0.5, 0.5])
            .sizes(vec![1.0, 3.0])
            .bandwidth(8.0)
            .build()
            .unwrap();
        let sol = solve_uniform(&p);
        assert!((sol.bandwidth_used - 8.0).abs() < 1e-9);
        assert!((sol.frequencies[0] - sol.frequencies[1]).abs() < 1e-12);
    }

    #[test]
    fn proportional_tracks_change_rates() {
        let sol = solve_proportional(&toy());
        // λ = (1..5), Σλ = 15, B = 5 ⇒ f = λ/3.
        for (i, &f) in sol.frequencies.iter().enumerate() {
            assert!((f - (i + 1) as f64 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn proportional_all_static_allocates_nothing() {
        let p = Problem::builder()
            .change_rates(vec![0.0, 0.0])
            .access_probs(vec![0.5, 0.5])
            .bandwidth(2.0)
            .build()
            .unwrap();
        let sol = solve_proportional(&p);
        assert_eq!(sol.frequencies, vec![0.0, 0.0]);
    }

    #[test]
    fn optimal_dominates_all_baselines() {
        let p = toy();
        let opt = LagrangeSolver::default().solve(&p).unwrap();
        let uni = solve_uniform(&p);
        let prop = solve_proportional(&p);
        assert!(opt.perceived_freshness >= uni.perceived_freshness - 1e-9);
        assert!(opt.perceived_freshness >= prop.perceived_freshness - 1e-9);
    }

    #[test]
    fn sampling_greedy_prefers_volatile_groups() {
        // Group 0: slow changers; group 1: fast changers. Budget covers
        // exactly one group — the greedy policy picks the volatile one.
        let p = Problem::builder()
            .change_rates(vec![0.1, 0.1, 5.0, 5.0])
            .access_probs(vec![0.25; 4])
            .bandwidth(2.0)
            .build()
            .unwrap();
        let sol = solve_sampling_greedy(&p, &[0, 0, 1, 1]).unwrap();
        assert_eq!(sol.frequencies, vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn sampling_greedy_partial_group_on_boundary() {
        let p = Problem::builder()
            .change_rates(vec![5.0, 5.0, 0.1, 0.1])
            .access_probs(vec![0.25; 4])
            .bandwidth(3.0)
            .build()
            .unwrap();
        let sol = solve_sampling_greedy(&p, &[0, 0, 1, 1]).unwrap();
        assert_eq!(&sol.frequencies[..2], &[1.0, 1.0]);
        assert!((sol.frequencies[2] - 0.5).abs() < 1e-12);
        assert!((sol.bandwidth_used - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_greedy_validates_groups() {
        let p = toy();
        assert!(solve_sampling_greedy(&p, &[0, 1]).is_err());
    }

    #[test]
    fn grid_search_agrees_with_the_exact_solver() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 3.0, 5.0])
            .access_probs(vec![0.5, 0.3, 0.2])
            .bandwidth(4.0)
            .build()
            .unwrap();
        let exact = LagrangeSolver::default().solve(&p).unwrap();
        let grid = solve_grid_search(&p, 64).unwrap();
        // The exact optimum dominates any grid point, and the grid's best
        // point must come within its quadratic resolution of it.
        assert!(exact.perceived_freshness >= grid.perceived_freshness - 1e-12);
        assert!(
            exact.perceived_freshness - grid.perceived_freshness < 1e-2,
            "grid {} vs exact {}",
            grid.perceived_freshness,
            exact.perceived_freshness
        );
        assert!((grid.bandwidth_used - 4.0).abs() < 1e-9, "budget exhausted");
    }

    #[test]
    fn grid_search_exact_on_a_grid_aligned_optimum() {
        // Two identical elements: the optimum is the even split, which
        // lies exactly on any even-step grid.
        let p = Problem::builder()
            .change_rates(vec![2.0, 2.0])
            .access_probs(vec![0.5, 0.5])
            .bandwidth(3.0)
            .build()
            .unwrap();
        let grid = solve_grid_search(&p, 30).unwrap();
        assert!((grid.frequencies[0] - 1.5).abs() < 1e-12);
        assert!((grid.frequencies[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn grid_search_guards_its_domain() {
        let p = toy();
        assert!(solve_grid_search(&p, 0).is_err());
        let big = Problem::builder()
            .change_rates(vec![1.0; 9])
            .access_probs(vec![1.0 / 9.0; 9])
            .bandwidth(9.0)
            .build()
            .unwrap();
        assert!(solve_grid_search(&big, 10).is_err());
    }

    #[test]
    fn sampling_greedy_respects_sizes() {
        let p = Problem::builder()
            .change_rates(vec![5.0, 5.0])
            .access_probs(vec![0.5, 0.5])
            .sizes(vec![2.0, 2.0])
            .bandwidth(2.0)
            .build()
            .unwrap();
        let sol = solve_sampling_greedy(&p, &[0, 0]).unwrap();
        // Budget 2 covers half the 4-unit group cost.
        assert!((sol.frequencies[0] - 0.5).abs() < 1e-12);
        assert!((sol.bandwidth_used - 2.0).abs() < 1e-12);
    }
}
