//! Interest-blind baseline refresh policies from related work.
//!
//! These exist so the experiment harness can show where profile-aware
//! scheduling wins:
//!
//! * [`solve_uniform`] — every object refreshed at the same rate (the
//!   naive mirror);
//! * [`solve_proportional`] — refresh rate proportional to change rate,
//!   the policy implied by TTL-style cache coherence (paper ref \[7\]): a
//!   document's time-to-live tracks its change interval, so faster-changing
//!   documents get proportionally more polls;
//! * [`solve_sampling_greedy`] — a simplified version of the
//!   sampling-based policy of Cho & Ntoulas (paper ref \[6\]): objects are
//!   grouped (per "server"), a sample estimates each group's change ratio,
//!   groups are ranked by that ratio, and refreshes are poured greedily
//!   into the highest-ranked groups until the budget runs out.

use freshen_core::error::{CoreError, Result};
use freshen_core::problem::{Problem, Solution};

/// Uniform allocation: `fᵢ = B / Σsⱼ` (each object refreshed equally often;
/// with sizes, the budget is spread by size so it stays feasible).
pub fn solve_uniform(problem: &Problem) -> Solution {
    let total_size: f64 = problem.sizes().iter().sum();
    let f = problem.bandwidth() / total_size;
    Solution::evaluate(problem, vec![f; problem.len()])
}

/// Change-proportional ("TTL-ish") allocation:
/// `fᵢ ∝ λᵢ / sᵢ`, scaled to exactly exhaust the budget.
///
/// Interest-blind *and* — as Cho & Garcia-Molina showed and Table 1
/// reiterates — counterproductive for hopelessly volatile objects, which
/// soak up bandwidth without ever staying fresh.
pub fn solve_proportional(problem: &Problem) -> Solution {
    let weights: Vec<f64> = problem
        .change_rates()
        .iter()
        .zip(problem.sizes())
        .map(|(&l, &s)| l / s)
        .collect();
    let denom: f64 = weights
        .iter()
        .zip(problem.sizes())
        .map(|(&w, &s)| w * s)
        .sum();
    if denom <= 0.0 {
        // Nothing ever changes; refreshing is pointless.
        return Solution::evaluate(problem, vec![0.0; problem.len()]);
    }
    let scale = problem.bandwidth() / denom;
    let freqs: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
    Solution::evaluate(problem, freqs)
}

/// Sampling-based greedy refresh (simplified Cho & Ntoulas).
///
/// `groups[i]` assigns each element to a "server". The policy estimates
/// each group's change *ratio* — the expected fraction of its objects that
/// changed within one period, `mean(1 − e^{−λ})` over the group — ranks
/// groups by it, and assigns each object in rank order one refresh per
/// period until the bandwidth runs out (a partial refresh rate for the
/// group on the boundary).
///
/// Returns an error when `groups` has the wrong length or is empty.
pub fn solve_sampling_greedy(problem: &Problem, groups: &[usize]) -> Result<Solution> {
    if groups.len() != problem.len() {
        return Err(CoreError::LengthMismatch {
            what: "groups",
            expected: problem.len(),
            actual: groups.len(),
        });
    }
    let num_groups = match groups.iter().max() {
        Some(&g) => g + 1,
        None => return Err(CoreError::Empty),
    };
    // Estimated change ratio per group.
    let mut changed = vec![0.0f64; num_groups];
    let mut count = vec![0usize; num_groups];
    for (&g, &lam) in groups.iter().zip(problem.change_rates()) {
        changed[g] += 1.0 - (-lam).exp();
        count[g] += 1;
    }
    let mut ranked: Vec<usize> = (0..num_groups).filter(|&g| count[g] > 0).collect();
    ranked.sort_by(|&a, &b| {
        let ra = changed[a] / count[a] as f64;
        let rb = changed[b] / count[b] as f64;
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
    });

    // Pour bandwidth greedily: each object in the current group gets one
    // refresh per period (costing its size), partial on the boundary group.
    let mut freqs = vec![0.0; problem.len()];
    let mut remaining = problem.bandwidth();
    for &g in &ranked {
        let members: Vec<usize> = (0..problem.len()).filter(|&i| groups[i] == g).collect();
        let group_cost: f64 = members.iter().map(|&i| problem.sizes()[i]).sum();
        if group_cost <= remaining {
            for &i in &members {
                freqs[i] = 1.0;
            }
            remaining -= group_cost;
        } else {
            let fraction = remaining / group_cost;
            for &i in &members {
                freqs[i] = fraction;
            }
            break;
        }
    }
    Ok(Solution::evaluate(problem, freqs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lagrange::LagrangeSolver;

    fn toy() -> Problem {
        Problem::builder()
            .change_rates(vec![1.0, 2.0, 3.0, 4.0, 5.0])
            .access_probs(vec![0.5, 0.2, 0.15, 0.1, 0.05])
            .bandwidth(5.0)
            .build()
            .unwrap()
    }

    #[test]
    fn uniform_spreads_evenly() {
        let sol = solve_uniform(&toy());
        assert!(sol.frequencies.iter().all(|&f| (f - 1.0).abs() < 1e-12));
        assert!((sol.bandwidth_used - 5.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_with_sizes_stays_feasible() {
        let p = Problem::builder()
            .change_rates(vec![1.0, 1.0])
            .access_probs(vec![0.5, 0.5])
            .sizes(vec![1.0, 3.0])
            .bandwidth(8.0)
            .build()
            .unwrap();
        let sol = solve_uniform(&p);
        assert!((sol.bandwidth_used - 8.0).abs() < 1e-9);
        assert!((sol.frequencies[0] - sol.frequencies[1]).abs() < 1e-12);
    }

    #[test]
    fn proportional_tracks_change_rates() {
        let sol = solve_proportional(&toy());
        // λ = (1..5), Σλ = 15, B = 5 ⇒ f = λ/3.
        for (i, &f) in sol.frequencies.iter().enumerate() {
            assert!((f - (i + 1) as f64 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn proportional_all_static_allocates_nothing() {
        let p = Problem::builder()
            .change_rates(vec![0.0, 0.0])
            .access_probs(vec![0.5, 0.5])
            .bandwidth(2.0)
            .build()
            .unwrap();
        let sol = solve_proportional(&p);
        assert_eq!(sol.frequencies, vec![0.0, 0.0]);
    }

    #[test]
    fn optimal_dominates_all_baselines() {
        let p = toy();
        let opt = LagrangeSolver::default().solve(&p).unwrap();
        let uni = solve_uniform(&p);
        let prop = solve_proportional(&p);
        assert!(opt.perceived_freshness >= uni.perceived_freshness - 1e-9);
        assert!(opt.perceived_freshness >= prop.perceived_freshness - 1e-9);
    }

    #[test]
    fn sampling_greedy_prefers_volatile_groups() {
        // Group 0: slow changers; group 1: fast changers. Budget covers
        // exactly one group — the greedy policy picks the volatile one.
        let p = Problem::builder()
            .change_rates(vec![0.1, 0.1, 5.0, 5.0])
            .access_probs(vec![0.25; 4])
            .bandwidth(2.0)
            .build()
            .unwrap();
        let sol = solve_sampling_greedy(&p, &[0, 0, 1, 1]).unwrap();
        assert_eq!(sol.frequencies, vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn sampling_greedy_partial_group_on_boundary() {
        let p = Problem::builder()
            .change_rates(vec![5.0, 5.0, 0.1, 0.1])
            .access_probs(vec![0.25; 4])
            .bandwidth(3.0)
            .build()
            .unwrap();
        let sol = solve_sampling_greedy(&p, &[0, 0, 1, 1]).unwrap();
        assert_eq!(&sol.frequencies[..2], &[1.0, 1.0]);
        assert!((sol.frequencies[2] - 0.5).abs() < 1e-12);
        assert!((sol.bandwidth_used - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_greedy_validates_groups() {
        let p = toy();
        assert!(solve_sampling_greedy(&p, &[0, 1]).is_err());
    }

    #[test]
    fn sampling_greedy_respects_sizes() {
        let p = Problem::builder()
            .change_rates(vec![5.0, 5.0])
            .access_probs(vec![0.5, 0.5])
            .sizes(vec![2.0, 2.0])
            .bandwidth(2.0)
            .build()
            .unwrap();
        let sol = solve_sampling_greedy(&p, &[0, 0]).unwrap();
        // Budget 2 covers half the 4-unit group cost.
        assert!((sol.frequencies[0] - 0.5).abs() < 1e-12);
        assert!((sol.bandwidth_used - 2.0).abs() < 1e-12);
    }
}
