//! Incremental KKT repair: patch a previous optimum after localized drift
//! instead of re-running the full outer bisection.
//!
//! The periodic re-solve loop (`freshen-heuristics`' `AdaptiveScheduler`)
//! usually faces *localized* drift: a handful of elements changed their
//! rates or interest while the rest of the problem — and therefore the
//! water level `μ*` — barely moved. A full warm re-solve still pays
//! `O(probes · N)` with `probes ≈ 20–40`, because geometric bisection
//! narrows the multiplier bracket one bit per pass regardless of how close
//! the starting point was.
//!
//! Repair exploits two facts the bisection ignores:
//!
//! 1. **Warm per-element solves are cheap.** Seeded from the previous
//!    optimum's frequency, each inner root find starts inside a tight
//!    bracket and converges in 1–3 Newton steps instead of the cold
//!    path's ~10.
//! 2. **The budget residual has an analytic derivative.** Differentiating
//!    the stationarity condition `p·g(f; λ) = μ·s` in `μ` gives
//!    `df/dμ = s / (p·g′(f))`, so
//!    `dR/dμ = Σ_{f>0} s²/(p·g′(f)) < 0` falls out of the same pass that
//!    evaluates `R(μ) = Σ s·f(μ) − B`. A safeguarded Newton iteration on
//!    `μ` therefore converges superlinearly — typically 3–5 probes.
//!
//! The touched set steers *seeding only*: touched elements are re-solved
//! cold at the previous multiplier (their old frequency may be arbitrarily
//! stale), untouched elements keep their previous frequency as the warm
//! seed. Correctness never depends on the touched set being exact, because
//! every probe refines **all** active elements to the full inner tolerance
//! at the probed multiplier.
//!
//! Repair is always paired with certification ("repair then certify"): the
//! caller runs the strict [`SolutionAudit`](freshen_core::SolutionAudit)
//! certificate over the repaired solution and falls back to a full warm
//! re-solve when it fails. See `freshen-heuristics::adaptive`.

use std::ops::Range;

use freshen_core::error::{CoreError, Result};
use freshen_core::exec::{chunk_ranges, DEFAULT_CHUNK};
use freshen_core::numeric::NeumaierSum;
use freshen_core::problem::{Problem, Solution};
use freshen_core::soa::PackedColumns;

use crate::lagrange::{LagrangeSolver, STATIC_RATE};

/// Hard cap on repair Newton probes (full warm passes over the active
/// set). Far above the typical 1–3; hitting it means the drift was global
/// after all and the caller should fall back to a full re-solve.
const MAX_PROBES: usize = 40;

/// Cap on frontier-only Newton probes (each is `O(|touched|)`, so these
/// are nearly free relative to a full pass). The model converges in 3–5
/// probes when the drift really was local.
const FRONTIER_PROBES: usize = 12;

/// Elasticity cap for the analytic residual slope. Elements hovering near
/// the starvation threshold have a double-exponentially flat marginal, so
/// their pointwise `df/dμ = s/(p·g″(f))` can reach 10¹⁰× their actual
/// bounded response (`f` can only fall to 0) — one such element poisons
/// the aggregate slope and freezes Newton into micro-steps. Capping each
/// element's contribution at `E·s·f/μ` (a relative μ move changes its
/// bandwidth at most `E`-fold proportionally) leaves ordinary elements
/// untouched — their elasticity is O(1) — and bounds the stiff ones.
const MAX_ELASTICITY: f64 = 1e3;

/// Stride for the sampled analytic rest-slope estimate accumulated during
/// the reseed pass. Every `SLOPE_SAMPLE_STRIDE`-th untouched element pays
/// one extra derivative evaluation; the sampled slope, rescaled by the
/// sampled-vs-total bandwidth ratio, aims the frontier Newton phase. The
/// aim only has to be right to a few percent (the first exact pass
/// measures the true secant), so a 1-in-16 sample is plenty — and ~6% of
/// the cost of evaluating every element.
const SLOPE_SAMPLE_STRIDE: usize = 16;

/// Linear model of the non-frontier ("rest") bandwidth around an anchor
/// multiplier: `rest(μ) ≈ used + slope·(μ − anchor_mu)`. Drives the cheap
/// frontier Newton iteration between (and before) exact passes.
struct RestModel {
    /// Multiplier the model is anchored at.
    anchor_mu: f64,
    /// Rest bandwidth at the anchor.
    used: f64,
    /// d(rest bandwidth)/dμ at the anchor.
    slope: f64,
    /// Bandwidth budget the residual is taken against.
    budget: f64,
}

/// A repaired solution plus the work it took, for instrumentation and for
/// the repair-vs-full-re-solve benchmark columns.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The repaired (budget-exact, KKT-stationary) solution.
    pub solution: Solution,
    /// Multiplier probes spent (each probe is one warm pass over the
    /// active set).
    pub probes: usize,
    /// Total inner Newton iterations across all probes.
    pub inner_iters: usize,
}

impl LagrangeSolver {
    /// Repair `previous` after drift touched the elements in `touched`
    /// (original problem indices; an empty slice means "seeding comes
    /// entirely from the previous frequencies").
    ///
    /// `problem` is the *post-drift* problem; `previous` is the optimum of
    /// the pre-drift problem. Returns the optimum of `problem` (to the
    /// solver's budget tolerance) or [`CoreError::NoConvergence`] when the
    /// Newton iteration on `μ` fails to settle — the caller's cue to run a
    /// full re-solve.
    ///
    /// Errors with [`CoreError::LengthMismatch`] when `previous` does not
    /// match the problem size and [`CoreError::InvalidValue`] when it
    /// carries no usable multiplier: repair *requires* a warm `μ` seed.
    pub fn repair(
        &self,
        problem: &Problem,
        previous: &Solution,
        touched: &[usize],
    ) -> Result<RepairOutcome> {
        let n = problem.len();
        if previous.frequencies.len() != n {
            return Err(CoreError::LengthMismatch {
                what: "previous solution frequencies",
                expected: n,
                actual: previous.frequencies.len(),
            });
        }
        let mu0 = previous.multiplier.unwrap_or(f64::NAN);
        if !(mu0.is_finite() && mu0 > 0.0) {
            return Err(CoreError::InvalidValue {
                what: "previous solution multiplier",
                index: None,
                value: mu0,
            });
        }
        if !self.cost_weight.is_finite() || self.cost_weight < 0.0 {
            return Err(CoreError::InvalidValue {
                what: "solver cost weight",
                index: None,
                value: self.cost_weight,
            });
        }

        let rec = &self.recorder;
        let mut span = rec.span("solver.repair");
        span.arg("n", n);
        span.arg("touched", touched.len());
        rec.counter("solver.repairs").inc();

        // Pack the active set seeded from the previous frequencies. The
        // active-set filter matches the full solve exactly, so repair and
        // re-solve agree on which elements can receive bandwidth.
        let p_all = problem.access_probs();
        let lam_all = problem.change_rates();
        let active: Vec<usize> = (0..n)
            .filter(|&i| p_all[i] > 0.0 && lam_all[i] > STATIC_RATE)
            .collect();
        let mut cols = PackedColumns::gather_seeded(problem, &active, &previous.frequencies);
        let chunks = chunk_ranges(cols.len(), DEFAULT_CHUNK);
        let budget = problem.bandwidth();

        if cols.is_empty() {
            let mut sol = Solution::evaluate_with_policy(problem, vec![0.0; n], self.policy);
            sol.multiplier = Some(0.0);
            if self.cost_weight > 0.0 {
                sol.cost_multiplier = Some(self.cost_weight);
            }
            return Ok(RepairOutcome {
                solution: sol,
                probes: 0,
                inner_iters: 0,
            });
        }

        // Full-depth reseed of the touched elements at the old water
        // level: their previous frequency may be arbitrarily stale, so a
        // warm bracket around it could start far from the new root. The
        // packed indices of the touched elements form the *frontier* the
        // cheap Newton phase below iterates on.
        let mut stale = vec![false; n];
        for &i in touched {
            if i < n {
                stale[i] = true;
            }
        }
        let mut inner_total = 0usize;
        let mut frontier: Vec<usize> = Vec::new();
        let mut rest_used0 = NeumaierSum::new();
        let mut slope_sample = NeumaierSum::new();
        let mut used_sample = NeumaierSum::new();
        let mut rest_seen = 0usize;
        {
            let (ro, f) = cols.parts_mut();
            for (k, &i) in ro.ids.iter().enumerate() {
                if stale[i] {
                    let (fi, iters) = self.element_frequency_counted(
                        ro.p[k],
                        ro.lambda[k],
                        ro.s[k],
                        ro.c[k],
                        mu0,
                    );
                    f[k] = fi;
                    inner_total += iters;
                    frontier.push(k);
                } else {
                    rest_used0.add(ro.s[k] * f[k]);
                    if rest_seen.is_multiple_of(SLOPE_SAMPLE_STRIDE) {
                        slope_sample.add(self.slope_term(
                            ro.p[k],
                            ro.lambda[k],
                            ro.s[k],
                            f[k],
                            mu0,
                        ));
                        used_sample.add(ro.s[k] * f[k]);
                    }
                    rest_seen += 1;
                }
            }
        }
        let rest_used0 = rest_used0.total();
        // Sampled analytic rest slope, rescaled from the sample's
        // bandwidth to the full rest bandwidth. The Phase-B residual error
        // is proportional to this slope's error, and it propagates
        // multiplicatively through every later secant pass — a measured
        // ~4%-accurate slope instead of the elasticity-1 guess (−used/μ,
        // ~10% off) is routinely the difference between 3 and 4 exact
        // passes.
        let rest_slope0 = {
            let used_s = used_sample.total();
            let slope_s = slope_sample.total();
            if used_s > 0.0 && slope_s < 0.0 {
                slope_s * (rest_used0 / used_s)
            } else {
                -rest_used0 / mu0 // degenerate sample: elasticity-1 guess
            }
        };

        // Frontier Newton: the untouched elements are *already* at their
        // μ0 optimum (they came from the previous solve, whose per-element
        // tolerance matches ours), so their bandwidth at μ0 is known
        // without any root finding, and their aggregate response to a
        // small multiplier move is well approximated to first order. That
        // turns every trial multiplier into an O(|touched|) exact
        // recompute plus an O(1) model term, so the multiplier is already
        // Newton-converged (to model accuracy) before the first full pass.
        // The exact passes below re-anchor the model at every pass —
        // typically 2 of them bracket the tolerance instead of 4–6.
        //
        // The anchor slope is the sampled analytic estimate from the
        // reseed pass; the first exact pass replaces it with the measured
        // secant, so it only has to be right to a few percent to aim the
        // first pass well.
        let mut mu = self.frontier_newton(
            &mut cols,
            &frontier,
            &RestModel {
                anchor_mu: mu0,
                used: rest_used0,
                slope: rest_slope0,
                budget,
            },
            mu0,
            (mu0 / 64.0, mu0 * 64.0),
            &mut inner_total,
        );

        // Safeguarded Newton on the scalar budget residual
        // R(μ) = Σ s·f(μ) − B, with the analytic dR/dμ accumulated by the
        // same warm pass. Bracket sides are learned from probe signs
        // (R > 0 ⇔ μ too low) and guard the Newton step.
        //
        // Only *exact* passes may set a bracket side. The reseed pass's
        // `rest_used0` is exact exactly when the drift really was
        // confined to the touched set; when it was not (the drift monitor
        // under-reported), the untouched seeds are the *old* problem's
        // optimum — budget-snapped, so the μ0 residual they imply is ≈ 0
        // even though the true residual at μ0 is large. Treating that
        // phantom sign as a bracket side pins the search at μ0 (`repair`
        // then diverges and the certify path runs a needless full
        // re-solve). As model anchors the stale values are harmless:
        // model and secant steps only *propose* multipliers, and every
        // proposal is checked against brackets measured by true passes.
        let mut mu_lo = 0.0f64; // largest μ seen with R > 0 (over budget)
        let mut mu_hi = f64::INFINITY; // smallest μ seen with R < 0
        let mut probes = 0usize;
        let mut converged = false;
        let mut used = 0.0f64;
        let mut prev_mu = mu0;
        let mut prev_rest_used = rest_used0;
        while probes < MAX_PROBES {
            probes += 1;
            let (pass_used, drdmu, inner) = self.warm_pass(&chunks, &mut cols, mu);
            used = pass_used;
            inner_total += inner;
            let residual = used - budget;
            rec.event(
                "solver.repair.probe",
                &[
                    ("iter", &probes),
                    ("mu", &mu),
                    ("residual", &(residual / budget)),
                ],
            );
            if residual.abs() <= budget * self.budget_tol {
                converged = true;
                break;
            }
            if residual > 0.0 {
                mu_lo = mu_lo.max(mu);
            } else {
                mu_hi = mu_hi.min(mu);
            }
            // Step selection: re-anchor the frontier model at this pass
            // with a *secant* rest slope measured between the last two
            // exact passes, then let the cheap frontier iteration converge
            // the next multiplier against it. The secant beats the
            // analytic `dR/dμ` here because the analytic slope is biased a
            // few percent by starvation-boundary elements (their pointwise
            // derivative wildly overstates their bounded response; see
            // [`MAX_ELASTICITY`]), and a few percent of slope error caps
            // plain Newton at a ~25× residual reduction per pass. The
            // measured secant — kinks and all — plus exact frontier
            // recomputes leaves only second-order model error, so the next
            // pass typically lands inside tolerance. Plain Newton and
            // geometric bisection backstop the model.
            let rest_used_now = {
                let (s, f) = (cols.s(), cols.f());
                let mut front_used = NeumaierSum::new();
                for &k in &frontier {
                    front_used.add(s[k] * f[k]);
                }
                used - front_used.total()
            };
            let rest_secant = if mu != prev_mu {
                (rest_used_now - prev_rest_used) / (mu - prev_mu)
            } else {
                f64::NAN
            };
            let model_mu = if rest_secant.is_finite() && rest_secant < 0.0 {
                let model = RestModel {
                    anchor_mu: mu,
                    used: rest_used_now,
                    slope: rest_secant,
                    budget,
                };
                let bounds = (mu_lo.max(mu / 64.0), mu_hi.min(mu * 64.0));
                self.frontier_newton(&mut cols, &frontier, &model, mu, bounds, &mut inner_total)
            } else {
                f64::NAN
            };
            prev_mu = mu;
            prev_rest_used = rest_used_now;
            let newton = if drdmu < 0.0 {
                mu - residual / drdmu
            } else {
                f64::NAN
            };
            mu = if model_mu.is_finite() && model_mu != mu && model_mu > mu_lo && model_mu < mu_hi {
                model_mu
            } else if newton.is_finite() && newton > mu_lo && newton < mu_hi {
                newton
            } else if mu_hi.is_finite() && mu_lo > 0.0 {
                (mu_lo * mu_hi).sqrt() // geometric bisect inside the bracket
            } else if residual > 0.0 {
                mu * 2.0 // no upper side known yet: march up
            } else {
                mu * 0.5 // no lower side known yet: march down
            };
            if mu_hi.is_finite() && mu_lo > 0.0 && mu_hi - mu_lo <= mu_hi * 1e-15 {
                // Bracket numerically exhausted — the optimum straddles a
                // starvation threshold; the full solve's interpolation
                // handles that case, repair does not.
                break;
            }
        }
        if !converged {
            return Err(CoreError::NoConvergence {
                routine: "kkt repair newton",
                iterations: probes,
                residual: (used - budget).abs() / budget,
            });
        }

        // Multiplicative snap of the (already tiny) residual, exactly as
        // the full solve does at convergence.
        if used > 0.0 {
            let scale = budget / used;
            for f in cols.f_mut() {
                *f *= scale;
            }
        }

        rec.counter("solver.repair.probes").add(probes as u64);
        rec.counter("solver.repair.inner_iters")
            .add(inner_total as u64);

        let mut freqs = vec![0.0; n];
        cols.scatter_f(&mut freqs);
        let mut sol = Solution::evaluate_with_policy(problem, freqs, self.policy);
        sol.multiplier = Some(mu);
        if self.cost_weight > 0.0 {
            sol.cost_multiplier = Some(self.cost_weight);
        }
        sol.iterations = probes;
        Ok(RepairOutcome {
            solution: sol,
            probes,
            inner_iters: inner_total,
        })
    }

    /// One element's contribution to the residual slope `dR/dμ`, with the
    /// [`MAX_ELASTICITY`] cap applied (see the constant's doc). Zero for
    /// starved elements and non-concave points.
    fn slope_term(&self, p: f64, lam: f64, s: f64, f: f64, mu: f64) -> f64 {
        if !f.is_finite() || f <= 0.0 {
            return 0.0;
        }
        let g2 = self.policy.second_derivative(lam, f);
        if g2 >= 0.0 {
            return 0.0;
        }
        let raw = s * s / (p * g2); // negative
        if mu > 0.0 {
            raw.max(-MAX_ELASTICITY * s * f / mu)
        } else {
            raw
        }
    }

    /// The cheap half of "repair then certify": exact warm recomputes of
    /// the frontier elements plus the linear [`RestModel`] for everyone
    /// else, Newton-iterated on the scalar budget residual. Each probe is
    /// `O(|frontier|)` — nearly free next to a full pass — so the
    /// multiplier arrives at the next exact pass already converged to
    /// model accuracy. Returns the model-converged μ (never outside the
    /// caller's open `bounds`; on any sign of trouble it simply returns
    /// early and lets the exact safeguarded loop take over). Frontier
    /// frequencies in `cols` are left refined as warm seeds.
    fn frontier_newton(
        &self,
        cols: &mut PackedColumns,
        frontier: &[usize],
        model: &RestModel,
        start_mu: f64,
        bounds: (f64, f64),
        inner_total: &mut usize,
    ) -> f64 {
        let (floor, ceil) = bounds;
        let (p, lam, s, f_now) = (cols.p(), cols.lambda(), cols.s(), cols.f());
        let c = cols.c();
        let mut f_front: Vec<f64> = frontier.iter().map(|&k| f_now[k]).collect();
        let mut mu = start_mu;
        for _ in 0..FRONTIER_PROBES {
            let mut front_used = NeumaierSum::new();
            let mut front_slope = NeumaierSum::new();
            for (j, &k) in frontier.iter().enumerate() {
                let (fk, iters) =
                    self.element_frequency_warm(p[k], lam[k], s[k], c[k], mu, f_front[j]);
                f_front[j] = fk;
                *inner_total += iters;
                front_used.add(s[k] * fk);
                front_slope.add(self.slope_term(p[k], lam[k], s[k], fk, mu));
            }
            let residual = model.used + model.slope * (mu - model.anchor_mu) + front_used.total()
                - model.budget;
            if residual.abs() <= model.budget * self.budget_tol {
                break;
            }
            let slope = model.slope + front_slope.total();
            let next = if slope < 0.0 {
                mu - residual / slope
            } else {
                f64::NAN
            };
            // The model is only trusted near its anchor; a step escaping
            // the caller's bounds means the drift was global after all —
            // leave μ where it is for the exact loop to sort out.
            if !(next.is_finite() && next > floor && next < ceil) {
                break;
            }
            if (next - mu).abs() <= mu * 1e-15 {
                mu = next;
                break;
            }
            mu = next;
        }
        let f = cols.f_mut();
        for (j, &k) in frontier.iter().enumerate() {
            f[k] = f_front[j];
        }
        mu
    }

    /// One warm pass at multiplier `mu`: refine every packed element's
    /// frequency from its current value and return the consumed bandwidth,
    /// the analytic residual derivative `dR/dμ`, and the inner iterations
    /// spent. Chunked on the solver's executor with in-order compensated
    /// merges — bit-identical at any worker count.
    fn warm_pass(
        &self,
        chunks: &[Range<usize>],
        cols: &mut PackedColumns,
        mu: f64,
    ) -> (f64, f64, usize) {
        let (p, lam, s) = (cols.p(), cols.lambda(), cols.s());
        let c = cols.c();
        let f0 = cols.f();
        let parts = self.executor.map_ranges(chunks, |range| {
            let mut local = Vec::with_capacity(range.len());
            let mut used = NeumaierSum::new();
            let mut slope = NeumaierSum::new();
            let mut inner = 0usize;
            for k in range {
                let (f, iters) = self.element_frequency_warm(p[k], lam[k], s[k], c[k], mu, f0[k]);
                local.push(f);
                used.add(s[k] * f);
                slope.add(self.slope_term(p[k], lam[k], s[k], f, mu));
                inner += iters;
            }
            (local, used, slope, inner)
        });
        let freqs = cols.f_mut();
        let mut used = NeumaierSum::new();
        let mut slope = NeumaierSum::new();
        let mut inner = 0usize;
        for (range, (local, part_used, part_slope, part_inner)) in chunks.iter().zip(parts) {
            freqs[range.clone()].copy_from_slice(&local);
            used.merge(part_used);
            slope.merge(part_slope);
            inner += part_inner;
        }
        (used.total(), slope.total(), inner)
    }

    /// Warm variant of the per-element root find: solve
    /// `p·g(f; λ) = μ·s + γ·c` starting from the seed `f0` (the element's
    /// frequency at a nearby multiplier). Falls back to the cold solve
    /// when the seed carries no information (`f0 ≤ 0`: the element just
    /// entered the support). The γ levy shifts the target exactly as in
    /// the cold path — and because γ is constant across probes it leaves
    /// the residual slope `df/dμ = s/(p·g″)` untouched, so the repair
    /// Newton machinery needs no other change.
    fn element_frequency_warm(
        &self,
        p: f64,
        lam: f64,
        s: f64,
        c: f64,
        mu: f64,
        f0: f64,
    ) -> (f64, usize) {
        let t = (mu * s + self.cost_weight * c) / p;
        if t >= 1.0 / lam {
            return (0.0, 0); // left the support at this water level
        }
        if !f0.is_finite() || f0 <= 0.0 {
            return self.element_frequency_counted(p, lam, s, c, mu);
        }
        // Newton on h(f) = g(f) − t starting *at* the seed — for a good
        // seed (a nearby multiplier's optimum) the very first residual
        // check exits, and one corrective step handles the rest. The
        // bracket [lo, hi] is learned from residual signs as the iteration
        // walks (g is strictly decreasing), safeguarding exactly like the
        // cold path and matching its tolerances so warm and cold agree to
        // the same precision.
        let mut lo = 0.0f64;
        let mut hi = f64::INFINITY;
        let mut f = f0;
        let mut iters = 0;
        for _ in 0..self.max_inner {
            iters += 1;
            let h = self.policy.gradient(lam, f) - t;
            if h.abs() <= t * 1e-12 {
                break;
            }
            if h > 0.0 {
                lo = f;
            } else {
                hi = f;
            }
            let dh = self.policy.second_derivative(lam, f);
            let newton = if dh < 0.0 { f - h / dh } else { f64::NAN };
            f = if newton.is_finite() && newton > lo && newton < hi {
                newton
            } else if hi.is_finite() {
                0.5 * (lo + hi)
            } else {
                lo * 2.0 // no upper side yet: double toward the root
            };
            if hi.is_finite() && (hi - lo) <= f * 1e-14 {
                break;
            }
        }
        (f, iters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshen_core::audit::SolutionAudit;

    fn striped(n: usize, tilt: f64) -> Problem {
        let rates: Vec<f64> = (0..n)
            .map(|i| (0.1 + (i % 13) as f64 * 0.4) * if i % 5 == 0 { tilt } else { 1.0 })
            .collect();
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        Problem::builder()
            .change_rates(rates)
            .access_weights(weights)
            .bandwidth(n as f64 / 3.0)
            .build()
            .unwrap()
    }

    #[test]
    fn repair_matches_full_resolve_after_local_drift() {
        let solver = LagrangeSolver::default();
        let before = striped(600, 1.0);
        let previous = solver.solve(&before).unwrap();
        let after = striped(600, 1.35);
        let touched: Vec<usize> = (0..600).filter(|i| i % 5 == 0).collect();

        let repaired = solver.repair(&after, &previous, &touched).unwrap();
        let full = solver.solve(&after).unwrap();
        assert!(
            (repaired.solution.perceived_freshness - full.perceived_freshness).abs() < 1e-9,
            "repair PF {} vs full PF {}",
            repaired.solution.perceived_freshness,
            full.perceived_freshness
        );
        assert!(
            (repaired.solution.bandwidth_used - after.bandwidth()).abs() < after.bandwidth() * 1e-8
        );
    }

    #[test]
    fn repaired_solution_passes_strict_certificate() {
        let solver = LagrangeSolver::default();
        let before = striped(400, 1.0);
        let previous = solver.solve(&before).unwrap();
        let after = striped(400, 0.7);
        let touched: Vec<usize> = (0..400).filter(|i| i % 5 == 0).collect();
        let repaired = solver.repair(&after, &previous, &touched).unwrap();
        let report = SolutionAudit::default()
            .check(&after, &repaired.solution, solver.policy)
            .unwrap();
        assert!(report.is_clean(), "strict audit failed: {report:?}");
    }

    #[test]
    fn repair_is_cheaper_than_full_resolve() {
        let solver = LagrangeSolver::default();
        let before = striped(2000, 1.0);
        let previous = solver.solve(&before).unwrap();
        let after = striped(2000, 1.1);
        let touched: Vec<usize> = (0..2000).filter(|i| i % 5 == 0).collect();
        let repaired = solver.repair(&after, &previous, &touched).unwrap();
        let full = solver.solve(&after).unwrap();
        assert!(
            repaired.probes * 4 < full.iterations,
            "repair probes {} should be well under full outer iters {}",
            repaired.probes,
            full.iterations
        );
    }

    #[test]
    fn repair_handles_empty_touched_set() {
        let solver = LagrangeSolver::default();
        let problem = striped(300, 1.0);
        let previous = solver.solve(&problem).unwrap();
        // No drift at all: repair must reproduce the same optimum almost
        // immediately.
        let repaired = solver.repair(&problem, &previous, &[]).unwrap();
        assert!(
            (repaired.solution.perceived_freshness - previous.perceived_freshness).abs() < 1e-12
        );
        assert!(repaired.probes <= 2, "took {} probes", repaired.probes);
    }

    #[test]
    fn repair_requires_a_multiplier_seed() {
        let solver = LagrangeSolver::default();
        let problem = striped(50, 1.0);
        let mut previous = solver.solve(&problem).unwrap();
        previous.multiplier = None;
        assert!(matches!(
            solver.repair(&problem, &previous, &[]),
            Err(CoreError::InvalidValue { .. })
        ));
    }

    #[test]
    fn repair_rejects_mismatched_previous() {
        let solver = LagrangeSolver::default();
        let previous = solver.solve(&striped(50, 1.0)).unwrap();
        let other = striped(60, 1.0);
        assert!(matches!(
            solver.repair(&other, &previous, &[]),
            Err(CoreError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn repair_handles_support_changes() {
        // Drift big enough to push elements across the starvation
        // boundary in both directions.
        let solver = LagrangeSolver::default();
        let before = striped(500, 1.0);
        let previous = solver.solve(&before).unwrap();
        let after = striped(500, 6.0);
        let touched: Vec<usize> = (0..500).filter(|i| i % 5 == 0).collect();
        let repaired = solver.repair(&after, &previous, &touched).unwrap();
        let full = solver.solve(&after).unwrap();
        assert!(
            (repaired.solution.perceived_freshness - full.perceived_freshness).abs() < 1e-9,
            "support-changing repair PF {} vs full {}",
            repaired.solution.perceived_freshness,
            full.perceived_freshness
        );
    }

    #[test]
    fn cost_aware_repair_matches_full_resolve_and_certifies() {
        // "Repair then certify" must keep working when the solver carries
        // a poll levy: the repaired optimum agrees with the cost-aware
        // full solve and passes the cost-adjusted strict certificate.
        let solver = LagrangeSolver::default().with_cost_weight(1e-4);
        let base = striped(600, 1.0);
        let costs: Vec<f64> = (0..600).map(|i| 0.5 + (i % 7) as f64 * 0.4).collect();
        let before = Problem::builder()
            .change_rates(base.change_rates().to_vec())
            .access_probs(base.access_probs().to_vec())
            .costs(costs.clone())
            .bandwidth(base.bandwidth() / 8.0)
            .build()
            .unwrap();
        let previous = solver.solve(&before).unwrap();
        assert!(previous.multiplier.unwrap() > 0.0, "budget must bind here");

        let drifted = striped(600, 1.35);
        let after = Problem::builder()
            .change_rates(drifted.change_rates().to_vec())
            .access_probs(drifted.access_probs().to_vec())
            .costs(costs)
            .bandwidth(drifted.bandwidth() / 8.0)
            .build()
            .unwrap();
        let touched: Vec<usize> = (0..600).filter(|i| i % 5 == 0).collect();

        let repaired = solver.repair(&after, &previous, &touched).unwrap();
        let full = solver.solve(&after).unwrap();
        assert!(
            (repaired.solution.perceived_freshness - full.perceived_freshness).abs() < 1e-9,
            "cost-aware repair PF {} vs full PF {}",
            repaired.solution.perceived_freshness,
            full.perceived_freshness
        );
        assert_eq!(repaired.solution.cost_multiplier, Some(1e-4));

        let report = SolutionAudit::default()
            .check_with_cost(&after, &repaired.solution, solver.policy, 1e-4)
            .unwrap();
        assert!(report.is_clean(), "cost-adjusted audit failed: {report:?}");
    }

    #[test]
    fn repair_counts_are_recorded() {
        use freshen_obs::Recorder;
        let rec = Recorder::enabled();
        let solver = LagrangeSolver::default().with_recorder(rec.clone());
        let problem = striped(100, 1.0);
        let previous = solver.solve(&problem).unwrap();
        solver.repair(&problem, &previous, &[0, 5]).unwrap();
        assert_eq!(rec.counter_value("solver.repairs"), Some(1));
        assert!(rec.counter_value("solver.repair.probes").unwrap() >= 1);
    }
}
