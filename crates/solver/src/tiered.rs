//! Tiered solves over a relay [`Topology`]: per-tier water-filling with
//! adjoint marginal-value weights, plus an outer budget-split search.
//!
//! # The block structure
//!
//! A tiered schedule assigns a frequency to every *(link, element)*
//! pair, subject to one bandwidth budget per node (a node pays for the
//! polls it issues over its incoming links). Edge PF — the objective —
//! is, per element, multilinear in the per-hop freshness factors of the
//! composed recursion (`freshen_core::topology`): holding every other
//! node fixed, node `n`'s contribution is
//!
//! ```text
//! Σᵢ σ_{n,i} · (1 − Π_{l→n} (1 − a_{l,i}·F̄(λᵢ, f_{l,i})))  + const
//! ```
//!
//! where `a_{l,i}` is the upstream node's composed freshness and
//! `σ_{n,i} = ∂(edge PF)/∂F_{n,i}` is the **adjoint weight** — computed
//! by a reverse topological sweep exactly like back-propagation
//! (`σ = pᵢ/|sinks|` at a sink; upstream, each outgoing link passes
//! back its own hop factor times the other-parent staleness product).
//! Fixing the weights, each node's subproblem is a *flat* freshening
//! problem over its (link, element) entries — concave water-filling with
//! per-entry interest `w_{l,i} = σ_{n,i}·a_{l,i}·Π_{l'≠l}(1 − a·F̄)` —
//! which the existing [`LagrangeSolver`] solves exactly (and
//! [`solve_sharded`](LagrangeSolver::solve_sharded) solves in parallel).
//! The tiered solver is block-coordinate ascent over nodes in
//! topological order: sweep, re-solve each block against refreshed
//! weights, repeat until the schedule reaches a fixed point. For trees
//! (every node a single parent) each block solve is the exact block
//! maximizer, so the ascent is monotone; with parallel relays the
//! cross-link terms make the linearized block an approximation, so each
//! block update is safeguarded — reverted if it fails to improve the
//! true edge PF.
//!
//! A fixed point is exactly a KKT point of the tiered program: the
//! water-filling stationarity `w_{l,i}·F̄'(λᵢ, f_{l,i}) = μₙ·sᵢ` *is*
//! the tiered stationarity condition once `w` carries the adjoint
//! chain-rule factors. Each tier's block is therefore certified by the
//! strict [`SolutionAudit`] against its recorded weights — the same
//! certificate the flat solvers must pass.
//!
//! # Budget split
//!
//! [`TieredSolver::solve_split`] searches over the division of one
//! total budget across tiers, reusing the dual machinery of
//! [`solve_cost_budget`](LagrangeSolver::solve_cost_budget): at the
//! split optimum every tier's water level (marginal edge-PF per unit of
//! bandwidth) is equal, otherwise moving bandwidth from the
//! lowest-marginal tier to the highest would raise edge PF. So the
//! outer search bisects one **shared price** `μ` over all tiers'
//! entries at once — per-entry frequencies from the same closed-form
//! root solve the flat bisection uses, total spend monotone decreasing
//! in `μ` — until the total budget is met; each tier's budget is
//! whatever it consumed at that shared level. Weights and budgets are
//! alternated to a joint fixed point.

use freshen_core::audit::{AuditReport, SolutionAudit};
use freshen_core::error::{CoreError, Result};
use freshen_core::numeric::NeumaierSum;
use freshen_core::policy::SyncPolicy;
use freshen_core::problem::{Problem, Solution};
use freshen_core::topology::{TieredSchedule, Topology};

use crate::lagrange::{LagrangeSolver, STATIC_RATE};

/// Block-coordinate tiered solver over a relay [`Topology`].
#[derive(Debug, Clone)]
pub struct TieredSolver {
    /// The flat water-filling solver used for every per-tier block
    /// solve (its `policy`, `executor`, and tolerances apply; its
    /// `cost_weight` must stay 0 — tier budgets are hard constraints).
    pub base: LagrangeSolver,
    /// Maximum block-ascent sweeps over the nodes.
    pub max_rounds: usize,
    /// Relative edge-PF improvement under which the ascent stops.
    pub pf_tol: f64,
    /// Shard count for the per-tier inner solves: `<= 1` routes through
    /// [`LagrangeSolver::solve`], otherwise
    /// [`LagrangeSolver::solve_sharded`] with this many shards.
    pub shards: usize,
}

impl Default for TieredSolver {
    fn default() -> Self {
        TieredSolver {
            base: LagrangeSolver::default(),
            max_rounds: 24,
            pf_tol: 1e-12,
            shards: 0,
        }
    }
}

/// The record of one tier's final block solve — enough to rebuild the
/// synthetic flat problem and re-check its KKT certificate.
#[derive(Debug, Clone)]
pub struct NodeSolve {
    /// Node index in the topology.
    pub node: usize,
    /// The tier's (link, element) entries, in solve order.
    pub entries: Vec<(usize, usize)>,
    /// Raw adjoint marginal-value weight of each entry at the final
    /// accepted block solve.
    pub weights: Vec<f64>,
    /// Water-level multiplier of the block solve, in the synthetic
    /// (weight-normalized) problem's units; `None` when the tier had no
    /// positive-weight entry and was left unfunded.
    pub multiplier: Option<f64>,
    /// Bandwidth the block solve consumed.
    pub spend: f64,
    /// Outer bisection iterations of the block solve.
    pub iterations: usize,
}

/// A solved tiered schedule with its per-tier solve records.
#[derive(Debug, Clone)]
pub struct TieredSolution {
    /// Per-link frequencies.
    pub schedule: TieredSchedule,
    /// Edge PF (mean over sinks) under the composed recursion.
    pub edge_pf: f64,
    /// Per-node PF.
    pub node_pf: Vec<f64>,
    /// Per-node bandwidth spend.
    pub node_spend: Vec<f64>,
    /// Per-node budgets the solve ran against (the topology's for
    /// [`TieredSolver::solve`]; the discovered split for
    /// [`TieredSolver::solve_split`]).
    pub budgets: Vec<f64>,
    /// Block-ascent sweeps performed.
    pub rounds: usize,
    /// Final block-solve record per non-source node, in topological
    /// order — the input to [`TieredSolver::certify`].
    pub nodes: Vec<NodeSolve>,
}

impl TieredSolver {
    /// The per-hop freshness factor of the base policy.
    #[inline]
    fn hop(&self, lam: f64, f: f64) -> f64 {
        self.base.policy.freshness(lam, f)
    }

    fn policy(&self) -> SyncPolicy {
        self.base.policy
    }

    /// The tier's (link, element) entries: incoming links in topology
    /// order, carried elements ascending within each.
    fn entries_for(topo: &Topology, node: usize) -> Vec<(usize, usize)> {
        let mut entries = Vec::new();
        for &l in topo.incoming(node) {
            match &topo.links()[l].elements {
                None => entries.extend((0..topo.n_elements()).map(|i| (l, i))),
                Some(subset) => entries.extend(subset.iter().map(|&i| (l, i))),
            }
        }
        entries
    }

    /// Adjoint weights `σ_{n,i} = ∂(edge PF)/∂F_{n,i}` by a reverse
    /// topological sweep (for DAGs whose paths re-merge this is the
    /// first-order sensitivity; exact on trees).
    fn adjoint(
        &self,
        topo: &Topology,
        problem: &Problem,
        schedule: &TieredSchedule,
        fresh: &[Vec<f64>],
    ) -> Vec<Vec<f64>> {
        let n = topo.n_elements();
        let lam = problem.change_rates();
        let p = problem.access_probs();
        let mut sigma = vec![vec![0.0f64; n]; topo.node_count()];
        let sink_w = 1.0 / topo.sinks().len() as f64;
        for &s in topo.sinks() {
            for i in 0..n {
                sigma[s][i] = p[i] * sink_w;
            }
        }
        for &node in topo.order().iter().rev() {
            for &l in topo.outgoing(node) {
                let child = topo.links()[l].to;
                for i in 0..n {
                    if !topo.links()[l].carries(i) || sigma[child][i] == 0.0 {
                        continue;
                    }
                    let hop = self.hop(lam[i], schedule.link_freqs[l][i]);
                    if hop == 0.0 {
                        continue;
                    }
                    let mut other = 1.0f64;
                    for &l2 in topo.incoming(child) {
                        if l2 != l && topo.links()[l2].carries(i) {
                            other *= 1.0
                                - fresh[topo.links()[l2].from][i]
                                    * self.hop(lam[i], schedule.link_freqs[l2][i]);
                        }
                    }
                    sigma[node][i] += sigma[child][i] * hop * other;
                }
            }
        }
        sigma
    }

    /// Raw water-filling weight of each of `node`'s entries:
    /// `σ_{n,i} · a_{l,i} · Π_{l'≠l}(1 − a_{l',i}·F̄(λᵢ, f_{l',i}))`.
    // The weight needs the whole sweep state (topology, schedule,
    // upstream freshness, adjoints) plus the node's coordinates;
    // bundling them into a struct would hide which solve the state
    // belongs to.
    #[allow(clippy::too_many_arguments)]
    fn node_weights(
        &self,
        topo: &Topology,
        problem: &Problem,
        schedule: &TieredSchedule,
        fresh: &[Vec<f64>],
        sigma: &[Vec<f64>],
        node: usize,
        entries: &[(usize, usize)],
    ) -> Vec<f64> {
        let lam = problem.change_rates();
        entries
            .iter()
            .map(|&(l, i)| {
                let a = fresh[topo.links()[l].from][i];
                if a == 0.0 || sigma[node][i] == 0.0 {
                    return 0.0;
                }
                let mut other = 1.0f64;
                for &l2 in topo.incoming(node) {
                    if l2 != l && topo.links()[l2].carries(i) {
                        other *= 1.0
                            - fresh[topo.links()[l2].from][i]
                                * self.hop(lam[i], schedule.link_freqs[l2][i]);
                    }
                }
                sigma[node][i] * a * other
            })
            .collect()
    }

    /// Build the tier's synthetic flat problem. Returns `None` when no
    /// entry has positive weight (the tier deserves no bandwidth).
    ///
    /// When the entry set is exactly the full catalog over one link,
    /// the weights are bit-for-bit the problem's access probabilities,
    /// and the tier's poll-cost scale is 1, the synthetic problem
    /// reuses those probabilities through the non-normalizing
    /// `access_probs` path — so a single-tier topology's block solve is
    /// byte-identical to the flat solve of the same problem.
    fn synth_problem(
        &self,
        topo: &Topology,
        problem: &Problem,
        node: usize,
        entries: &[(usize, usize)],
        weights: &[f64],
        budget: f64,
    ) -> Result<Option<Problem>> {
        if weights.iter().all(|&w| w <= 0.0) {
            return Ok(None);
        }
        let full_catalog = entries.len() == problem.len()
            && entries
                .iter()
                .enumerate()
                .all(|(k, &(l, i))| l == entries[0].0 && i == k);
        let verbatim = full_catalog
            && topo.poll_costs()[node] == 1.0
            && weights
                .iter()
                .zip(problem.access_probs())
                .all(|(w, p)| w.to_bits() == p.to_bits());

        let lam: Vec<f64> = entries
            .iter()
            .map(|&(_, i)| problem.change_rates()[i])
            .collect();
        let sizes: Vec<f64> = entries.iter().map(|&(_, i)| problem.sizes()[i]).collect();
        let mut builder = Problem::builder()
            .change_rates(lam)
            .sizes(sizes)
            .bandwidth(budget);
        builder = if verbatim {
            builder.access_probs(weights.to_vec())
        } else {
            builder.access_weights(weights.to_vec())
        };
        let scale = topo.poll_costs()[node];
        if problem.poll_costs().is_some() || scale != 1.0 {
            builder = builder.costs(
                entries
                    .iter()
                    .map(|&(_, i)| problem.poll_cost(i) * scale)
                    .collect(),
            );
        }
        builder.build().map(Some)
    }

    /// One tier's inner flat solve — always cold (no warm start), so a
    /// re-solve of an unchanged block reproduces its schedule bitwise
    /// and the ascent can detect its fixed point exactly.
    fn inner_solve(&self, synth: &Problem) -> Result<Solution> {
        if self.shards > 1 {
            self.base.solve_sharded(synth, self.shards)
        } else {
            self.base.solve(synth)
        }
    }

    /// Solve the tiered program against the topology's own per-node
    /// budgets. The problem's `bandwidth` field is ignored — budgets
    /// live on the topology.
    pub fn solve(&self, topo: &Topology, problem: &Problem) -> Result<TieredSolution> {
        if topo.n_elements() != problem.len() {
            return Err(CoreError::LengthMismatch {
                what: "tiered solve elements",
                expected: topo.n_elements(),
                actual: problem.len(),
            });
        }
        if self.base.cost_weight != 0.0 {
            return Err(CoreError::InvalidValue {
                what: "tiered solver cost weight",
                index: None,
                value: self.base.cost_weight,
            });
        }
        let policy = self.policy();
        let tiers: Vec<usize> = topo.order().iter().copied().filter(|&n| n != 0).collect();
        let entries: Vec<Vec<(usize, usize)>> =
            tiers.iter().map(|&n| Self::entries_for(topo, n)).collect();

        let mut schedule = TieredSchedule::zero(topo);
        let mut records: Vec<Option<NodeSolve>> = vec![None; tiers.len()];
        let mut rounds = 0usize;
        let mut prev_pf = f64::NEG_INFINITY;
        let p = problem.access_probs();

        for round in 1..=self.max_rounds {
            rounds = round;
            let before = schedule.clone();
            for (t, &node) in tiers.iter().enumerate() {
                let fresh = topo.node_freshness(problem, &schedule, policy)?;
                // Round 1 bootstraps with myopic weights (σ = pᵢ at
                // every node, as if each tier were user-facing): the
                // true adjoint is zero below any still-unfunded node,
                // which would starve the whole chain forever.
                let sigma = if round == 1 {
                    vec![p.to_vec(); topo.node_count()]
                } else {
                    self.adjoint(topo, problem, &schedule, &fresh)
                };
                let weights =
                    self.node_weights(topo, problem, &schedule, &fresh, &sigma, node, &entries[t]);
                let synth = self.synth_problem(
                    topo,
                    problem,
                    node,
                    &entries[t],
                    &weights,
                    topo.budgets()[node],
                )?;
                let Some(synth) = synth else {
                    for &(l, i) in &entries[t] {
                        schedule.link_freqs[l][i] = 0.0;
                    }
                    records[t] = Some(NodeSolve {
                        node,
                        entries: entries[t].clone(),
                        weights,
                        multiplier: None,
                        spend: 0.0,
                        iterations: 0,
                    });
                    continue;
                };
                let sol = self.inner_solve(&synth)?;
                let old: Vec<f64> = entries[t]
                    .iter()
                    .map(|&(l, i)| schedule.link_freqs[l][i])
                    .collect();
                let pf_before = topo.edge_pf(problem, &schedule, policy)?;
                for (k, &(l, i)) in entries[t].iter().enumerate() {
                    schedule.link_freqs[l][i] = sol.frequencies[k];
                }
                let pf_after = topo.edge_pf(problem, &schedule, policy)?;
                // Multi-parent blocks are linearized, so the update is
                // safeguarded: keep it only if the true objective did
                // not regress (ties go to the new, certified block).
                if pf_after + 1e-15 * pf_before.abs() < pf_before {
                    for (k, &(l, i)) in entries[t].iter().enumerate() {
                        schedule.link_freqs[l][i] = old[k];
                    }
                    continue;
                }
                records[t] = Some(NodeSolve {
                    node,
                    entries: entries[t].clone(),
                    weights,
                    multiplier: sol.multiplier,
                    spend: sol.bandwidth_used,
                    iterations: sol.iterations,
                });
            }
            let pf = topo.edge_pf(problem, &schedule, policy)?;
            let fixed_point = schedule == before;
            let converged = round > 1 && (pf - prev_pf).abs() <= self.pf_tol * pf.abs().max(1.0);
            prev_pf = pf;
            if fixed_point || converged {
                break;
            }
        }

        let node_pf = topo.node_pf(problem, &schedule, policy)?;
        let node_spend = topo.node_spend(problem, &schedule)?;
        let edge_pf = topo.edge_pf(problem, &schedule, policy)?;
        let nodes = records
            .into_iter()
            .zip(&tiers)
            .zip(&entries)
            .map(|((rec, &node), entry)| {
                rec.unwrap_or(NodeSolve {
                    node,
                    entries: entry.clone(),
                    weights: vec![0.0; entry.len()],
                    multiplier: None,
                    spend: 0.0,
                    iterations: 0,
                })
            })
            .collect();
        Ok(TieredSolution {
            schedule,
            edge_pf,
            node_pf,
            node_spend,
            budgets: topo.budgets().to_vec(),
            rounds,
            nodes,
        })
    }

    /// Divide one `total_budget` across the tiers and solve: alternate
    /// a tiered solve (fixing budgets, refreshing adjoint weights) with
    /// a shared-price water-fill over *all* tiers' entries (fixing
    /// weights, rebalancing budgets) until the split stabilizes. The
    /// returned solution's `budgets` is the discovered split; no tier
    /// is ever budgeted beyond what it can spend at the shared price,
    /// so the split sums to `total_budget` (up to the bisection
    /// tolerance) and never overdraws.
    pub fn solve_split(
        &self,
        topo: &Topology,
        problem: &Problem,
        total_budget: f64,
    ) -> Result<TieredSolution> {
        if !total_budget.is_finite() || total_budget <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "total budget",
                index: None,
                value: total_budget,
            });
        }
        // Seed: split proportional to the access weight entering each
        // tier (the access-weighted heuristic), with a floor so every
        // tier can participate in round 1.
        let mut budgets = vec![0.0f64; topo.node_count()];
        {
            let p = problem.access_probs();
            let mut total_w = 0.0f64;
            for (node, b) in budgets.iter_mut().enumerate().skip(1) {
                let w: f64 = Self::entries_for(topo, node)
                    .iter()
                    .map(|&(_, i)| p[i])
                    .sum();
                *b = w;
                total_w += w;
            }
            for b in budgets.iter_mut().skip(1) {
                *b = (*b / total_w).max(1e-6) * total_budget;
            }
            let sum: f64 = budgets.iter().skip(1).sum();
            for b in budgets.iter_mut().skip(1) {
                *b *= total_budget / sum;
            }
        }
        let mut best: Option<TieredSolution> = None;
        for _ in 0..self.max_rounds {
            let scoped = topo.with_budgets(&budgets)?;
            let sol = self.solve(&scoped, problem)?;
            let keep = match &best {
                Some(prev) => sol.edge_pf >= prev.edge_pf,
                None => true,
            };
            let next = self.shared_price_split(&sol, problem, total_budget)?;
            let delta = next
                .iter()
                .zip(&budgets)
                .skip(1)
                .map(|(a, b)| (a - b).abs() / total_budget)
                .fold(0.0f64, f64::max);
            if keep {
                best = Some(sol);
            }
            budgets = next;
            if delta <= 1e-9 {
                break;
            }
        }
        Ok(best.expect("at least one split iteration ran"))
    }

    /// Water-fill every tier's entries against one shared price: bisect
    /// `μ` until the total spend meets `total_budget`, then read each
    /// tier's budget off its spend at that level. Spend is monotone
    /// decreasing in `μ`, exactly as in the flat outer bisection.
    fn shared_price_split(
        &self,
        sol: &TieredSolution,
        problem: &Problem,
        total_budget: f64,
    ) -> Result<Vec<f64>> {
        let solver = LagrangeSolver {
            cost_weight: 0.0,
            ..self.base.clone()
        };
        // (weight, λ, s, tier-slot) for every fundable entry.
        let mut entries: Vec<(f64, f64, f64, usize)> = Vec::new();
        for (t, rec) in sol.nodes.iter().enumerate() {
            for (k, &(_, i)) in rec.entries.iter().enumerate() {
                let w = rec.weights[k];
                let lam = problem.change_rates()[i];
                if w > 0.0 && lam > STATIC_RATE {
                    entries.push((w, lam, problem.sizes()[i], t));
                }
            }
        }
        let n_tiers = sol.nodes.len();
        let node_count = sol.budgets.len();
        if entries.is_empty() {
            // Nothing fundable anywhere: fall back to an even split.
            let mut budgets = vec![total_budget / n_tiers as f64; node_count];
            budgets[0] = 0.0;
            return Ok(budgets);
        }
        let spend_at = |mu: f64| -> (f64, Vec<f64>) {
            let mut per_tier = vec![NeumaierSum::new(); n_tiers];
            for &(w, lam, s, t) in &entries {
                let (f, _) = solver.element_frequency_counted(w, lam, s, 1.0, mu);
                per_tier[t].add(s * f);
            }
            let mut total = NeumaierSum::new();
            let spends: Vec<f64> = per_tier
                .into_iter()
                .map(|acc| {
                    let v = acc.total();
                    total.add(v);
                    v
                })
                .collect();
            (total.total(), spends)
        };
        let mu_limit = entries
            .iter()
            .map(|&(w, lam, s, _)| w / (lam * s))
            .fold(0.0f64, f64::max);
        let mut mu_hi = mu_limit;
        let mut mu_lo = mu_limit * 1e-6;
        let mut spends;
        // Expand the low side until the allocation overshoots.
        loop {
            let (total, s) = spend_at(mu_lo);
            spends = s;
            if total >= total_budget || mu_lo < mu_limit * 1e-300 {
                break;
            }
            mu_hi = mu_lo;
            mu_lo *= 1e-3;
        }
        for _ in 0..solver.max_outer {
            let mu = (mu_lo * mu_hi).sqrt();
            let (total, s) = spend_at(mu);
            if (total - total_budget).abs() <= total_budget * 1e-12
                || mu_hi - mu_lo <= mu_hi * 1e-15
            {
                spends = s;
                break;
            }
            if total > total_budget {
                mu_lo = mu;
            } else {
                mu_hi = mu;
            }
            spends = s;
        }
        // Scale multiplicatively so the split sums to the total budget
        // exactly, with a relative floor so no tier is frozen out of
        // the next weight-refresh round.
        let sum: f64 = spends.iter().sum();
        let mut budgets = vec![0.0f64; node_count];
        if sum <= 0.0 {
            for b in budgets.iter_mut().skip(1) {
                *b = total_budget / n_tiers as f64;
            }
            return Ok(budgets);
        }
        for (t, rec) in sol.nodes.iter().enumerate() {
            budgets[rec.node] = (spends[t] / sum).max(1e-9) * total_budget;
        }
        let bsum: f64 = budgets.iter().skip(1).sum();
        for b in budgets.iter_mut().skip(1) {
            *b *= total_budget / bsum;
        }
        Ok(budgets)
    }

    /// Re-check every tier's block solve against the strict KKT
    /// certificate: rebuild the synthetic flat problem from the
    /// recorded adjoint weights and audit the tier's frequencies at the
    /// recorded water level. Returns one report per non-source node in
    /// topological order (unfunded tiers audit their all-zero schedule
    /// against a zero budget-use, trivially clean).
    pub fn certify(
        &self,
        topo: &Topology,
        problem: &Problem,
        sol: &TieredSolution,
    ) -> Result<Vec<AuditReport>> {
        let audit = SolutionAudit::default();
        let policy = self.policy();
        let mut reports = Vec::with_capacity(sol.nodes.len());
        for rec in &sol.nodes {
            let freqs: Vec<f64> = rec
                .entries
                .iter()
                .map(|&(l, i)| sol.schedule.link_freqs[l][i])
                .collect();
            let synth = self.synth_problem(
                topo,
                problem,
                rec.node,
                &rec.entries,
                &rec.weights,
                sol.budgets[rec.node],
            )?;
            let report = match synth {
                Some(synth) => {
                    let mut flat = Solution::evaluate_with_policy(&synth, freqs, policy);
                    flat.multiplier = rec.multiplier;
                    audit.check(&synth, &flat, policy)?
                }
                None => {
                    // Unfunded tier (every adjoint weight 0): the
                    // all-zero schedule is the interior optimum of a
                    // levied stand-in problem — audit it in the
                    // cost-adjusted interior form (μ = 0, γ at the
                    // starvation price) where under-spend is legitimate.
                    let synth = Problem::builder()
                        .change_rates(
                            rec.entries
                                .iter()
                                .map(|&(_, i)| problem.change_rates()[i])
                                .collect(),
                        )
                        .access_weights(vec![1.0; rec.entries.len()])
                        .bandwidth(sol.budgets[rec.node].max(f64::MIN_POSITIVE))
                        .build()?;
                    let mut flat = Solution::evaluate_with_policy(&synth, freqs, policy);
                    flat.multiplier = Some(0.0);
                    let gamma = synth
                        .access_probs()
                        .iter()
                        .zip(synth.change_rates())
                        .filter(|(_, &l)| l > STATIC_RATE)
                        .map(|(&p, &l)| p / l)
                        .fold(0.0f64, f64::max)
                        .max(f64::MIN_POSITIVE);
                    audit.check_with_cost(&synth, &flat, policy, gamma)?
                }
            };
            reports.push(report);
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(n: usize) -> Problem {
        Problem::builder()
            .change_rates((0..n).map(|i| 0.2 + (i % 13) as f64 * 0.4).collect())
            .access_weights((0..n).map(|i| 1.0 / (i + 1) as f64).collect())
            .sizes((0..n).map(|i| 0.5 + (i % 5) as f64 * 0.25).collect())
            .bandwidth(n as f64 / 3.0)
            .build()
            .unwrap()
    }

    fn chain(relay_budget: f64, edge_budget: f64, n: usize) -> Topology {
        Topology::builder()
            .source("origin")
            .tier("relay", relay_budget)
            .tier("edge", edge_budget)
            .link("origin", "relay")
            .link("relay", "edge")
            .build(n)
            .unwrap()
    }

    #[test]
    fn single_tier_is_byte_identical_to_flat_solve() {
        let n = 600;
        let problem = problem(n);
        let topo = Topology::builder()
            .source("origin")
            .tier("edge", problem.bandwidth())
            .link("origin", "edge")
            .build(n)
            .unwrap();
        let flat = LagrangeSolver::default().solve(&problem).unwrap();
        let tiered = TieredSolver::default().solve(&topo, &problem).unwrap();
        assert_eq!(tiered.schedule.link_freqs[0], flat.frequencies);
        assert_eq!(tiered.nodes[0].multiplier, flat.multiplier);
        assert_eq!(
            tiered.nodes[0].spend.to_bits(),
            flat.bandwidth_used.to_bits()
        );
    }

    #[test]
    fn single_tier_sharded_is_byte_identical_to_flat_sharded() {
        let n = 900;
        let problem = problem(n);
        let topo = Topology::builder()
            .source("origin")
            .tier("edge", problem.bandwidth())
            .link("origin", "edge")
            .build(n)
            .unwrap();
        let flat = LagrangeSolver::default()
            .solve_sharded(&problem, 8)
            .unwrap();
        let solver = TieredSolver {
            shards: 8,
            ..TieredSolver::default()
        };
        let tiered = solver.solve(&topo, &problem).unwrap();
        assert_eq!(tiered.schedule.link_freqs[0], flat.frequencies);
    }

    #[test]
    fn two_tier_chain_spends_both_budgets_and_certifies() {
        let n = 400;
        let problem = problem(n);
        let topo = chain(150.0, 90.0, n);
        let solver = TieredSolver::default();
        let sol = solver.solve(&topo, &problem).unwrap();
        assert!(sol.edge_pf > 0.0 && sol.edge_pf < 1.0);
        // γ = 0 water-filling binds each tier's budget.
        assert!(
            (sol.node_spend[1] - 150.0).abs() < 150.0 * 1e-6,
            "{}",
            sol.node_spend[1]
        );
        assert!(
            (sol.node_spend[2] - 90.0).abs() < 90.0 * 1e-6,
            "{}",
            sol.node_spend[2]
        );
        assert!(topo.check_budgets(&problem, &sol.schedule, 1e-6).is_ok());
        // Edge PF can't beat either single hop's ceiling.
        assert!(sol.edge_pf <= sol.node_pf[1] + 1e-12);
        for (rec, report) in sol
            .nodes
            .iter()
            .zip(solver.certify(&topo, &problem, &sol).unwrap())
        {
            assert!(
                report.is_clean(),
                "tier {} audit: {}",
                rec.node,
                report.to_json()
            );
        }
    }

    #[test]
    fn chain_beats_naive_relay_split_of_same_link_budgets() {
        // The adjoint-weighted ascent should beat a uniform per-link
        // allocation of the same budgets.
        let n = 300;
        let problem = problem(n);
        let topo = chain(120.0, 70.0, n);
        let sol = TieredSolver::default().solve(&topo, &problem).unwrap();
        let mut uniform = TieredSchedule::zero(&topo);
        let s = problem.sizes();
        let total_size: f64 = s.iter().sum();
        for i in 0..n {
            uniform.link_freqs[0][i] = 120.0 / total_size;
            uniform.link_freqs[1][i] = 70.0 / total_size;
        }
        let uniform_pf = topo
            .edge_pf(&problem, &uniform, SyncPolicy::FixedOrder)
            .unwrap();
        assert!(
            sol.edge_pf > uniform_pf,
            "solved {} vs uniform {}",
            sol.edge_pf,
            uniform_pf
        );
    }

    #[test]
    fn parallel_relays_solve_and_certify() {
        let n = 200;
        let problem = problem(n);
        let topo = Topology::builder()
            .source("origin")
            .tier("r1", 60.0)
            .tier("r2", 40.0)
            .tier("edge", 80.0)
            .link("origin", "r1")
            .link("origin", "r2")
            .link("r1", "edge")
            .link("r2", "edge")
            .build(n)
            .unwrap();
        let solver = TieredSolver::default();
        let sol = solver.solve(&topo, &problem).unwrap();
        assert!(sol.edge_pf > 0.0);
        assert!(topo.check_budgets(&problem, &sol.schedule, 1e-6).is_ok());
        for report in solver.certify(&topo, &problem, &sol).unwrap() {
            assert!(report.is_clean(), "{}", report.to_json());
        }
    }

    #[test]
    fn split_covers_total_budget_without_overdrawing_any_tier() {
        let n = 250;
        let problem = problem(n);
        let topo = chain(1.0, 1.0, n); // placeholder budgets; split overrides
        let total = 160.0;
        let solver = TieredSolver::default();
        let sol = solver.solve_split(&topo, &problem, total).unwrap();
        let split_sum: f64 = sol.budgets.iter().skip(1).sum();
        assert!(
            (split_sum - total).abs() <= total * 1e-6,
            "split sums to {split_sum}, want {total}"
        );
        for node in 1..topo.node_count() {
            assert!(
                sol.node_spend[node] <= sol.budgets[node] * (1.0 + 1e-6),
                "tier {node} overdrawn: spend {} budget {}",
                sol.node_spend[node],
                sol.budgets[node]
            );
        }
        // The discovered split must not lose to the naive even split.
        let even = topo.with_budgets(&[0.0, total / 2.0, total / 2.0]).unwrap();
        let even_sol = solver.solve(&even, &problem).unwrap();
        assert!(
            sol.edge_pf >= even_sol.edge_pf - 1e-9,
            "split {} vs even {}",
            sol.edge_pf,
            even_sol.edge_pf
        );
    }

    #[test]
    fn rejects_mismatched_universe_and_levied_base() {
        let problem = problem(10);
        let topo = chain(5.0, 5.0, 11);
        assert!(TieredSolver::default().solve(&topo, &problem).is_err());
        let topo = chain(5.0, 5.0, 10);
        let levied = TieredSolver {
            base: LagrangeSolver::default().with_cost_weight(0.1),
            ..TieredSolver::default()
        };
        assert!(levied.solve(&topo, &problem).is_err());
        assert!(TieredSolver::default()
            .solve_split(&topo, &problem, -1.0)
            .is_err());
    }
}
