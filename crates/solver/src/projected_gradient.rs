//! A generic non-linear-programming baseline: projected gradient ascent.
//!
//! The paper solved the Core Problem with the proprietary IMSL C library's
//! non-linear programming routines and observed (§3) that a generic NLP
//! "runs for days without terminating" at hundreds of thousands of items.
//! We substitute a from-scratch generic solver with the same character:
//! **projected gradient ascent** over the weighted simplex
//! `{f ≥ 0, Σ sᵢ·fᵢ = B}`. Each iteration costs a full pass over all `N`
//! variables plus an `O(N log(1/ε))` Euclidean projection, and many
//! iterations are needed for tight convergence — which is exactly the
//! scaling story the heuristics in `freshen-heuristics` exist to beat.
//! (The *specialized* exact solver in [`crate::lagrange`] exploits the
//! problem's separability and is the one to use in practice.)
//!
//! Because the objective is concave and the feasible set convex, projected
//! gradient ascent converges to the global optimum; with a finite
//! iteration budget it returns a slightly sub-optimal allocation, whose
//! gap the tests bound against the exact solver.

use freshen_core::error::Result;
use freshen_core::freshness::freshness_gradient;
use freshen_core::problem::{Problem, Solution};
use freshen_obs::Recorder;

/// Projected-gradient-ascent solver (generic-NLP stand-in).
#[derive(Debug, Clone)]
pub struct ProjectedGradientSolver {
    /// Maximum gradient iterations.
    pub max_iters: usize,
    /// Stop when the relative objective improvement over a sweep falls
    /// below this.
    pub rel_tol: f64,
    /// Initial step size (adapted multiplicatively during the run).
    pub initial_step: f64,
    /// Observability sink (disabled by default; see `freshen-obs`).
    pub recorder: Recorder,
}

impl Default for ProjectedGradientSolver {
    fn default() -> Self {
        ProjectedGradientSolver {
            max_iters: 2000,
            rel_tol: 1e-10,
            initial_step: 1.0,
            recorder: Recorder::disabled(),
        }
    }
}

impl ProjectedGradientSolver {
    /// Attach an observability recorder.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Run projected gradient ascent from the uniform-bandwidth start.
    pub fn solve(&self, problem: &Problem) -> Result<Solution> {
        let n = problem.len();
        let mut solve_span = self.recorder.span("solver.projected_gradient.solve");
        solve_span.arg("n", n);
        let p = problem.access_probs();
        let lam = problem.change_rates();
        let s = problem.sizes();
        let budget = problem.bandwidth();

        // Feasible start: spread bandwidth evenly by size.
        let total_size: f64 = s.iter().sum();
        let mut f: Vec<f64> = s.iter().map(|_| budget / total_size).collect();
        let mut best_obj = problem.perceived_freshness(&f);
        let mut step = self.initial_step;
        let mut grad = vec![0.0; n];
        let mut trial = vec![0.0; n];
        let mut iters = 0usize;

        for _ in 0..self.max_iters {
            iters += 1;
            for i in 0..n {
                grad[i] = if p[i] > 0.0 && lam[i] > 0.0 {
                    p[i] * freshness_gradient(lam[i], f[i])
                } else {
                    0.0
                };
            }
            // Try the step; backtrack while it fails to improve.
            let mut improved = false;
            for _ in 0..40 {
                for i in 0..n {
                    trial[i] = f[i] + step * grad[i];
                }
                project_weighted_simplex(&mut trial, s, budget);
                let obj = problem.perceived_freshness(&trial);
                if obj > best_obj {
                    let gain = obj - best_obj;
                    f.copy_from_slice(&trial);
                    best_obj = obj;
                    improved = true;
                    step *= 1.25; // reward: grow the step
                    if gain < best_obj.abs().max(1e-12) * self.rel_tol {
                        return Ok(self.finish(problem, f, iters));
                    }
                    break;
                }
                step *= 0.5;
                if step < 1e-18 {
                    break;
                }
            }
            if !improved {
                break; // stationary (or step underflow): done
            }
        }
        Ok(self.finish(problem, f, iters))
    }

    fn finish(&self, problem: &Problem, freqs: Vec<f64>, iters: usize) -> Solution {
        self.recorder.counter("solver.pg.solves").inc();
        self.recorder.counter("solver.pg.iters").add(iters as u64);
        let mut sol = Solution::evaluate(problem, freqs);
        sol.iterations = iters;
        self.recorder
            .gauge("solver.pg.objective")
            .set(sol.perceived_freshness);
        sol
    }
}

/// Euclidean projection of `y` onto `{x ≥ 0, Σ aᵢ·xᵢ = b}` (in place).
///
/// The KKT form is `xᵢ = max(0, yᵢ − τ·aᵢ)` for the unique `τ` making the
/// constraint tight; `Σ aᵢ·max(0, yᵢ − τaᵢ)` is continuous and strictly
/// decreasing wherever positive, so `τ` is found by bisection.
///
/// # Panics
/// Panics when lengths differ, any weight is non-positive, or `b ≤ 0`.
pub fn project_weighted_simplex(y: &mut [f64], a: &[f64], b: f64) {
    assert_eq!(y.len(), a.len(), "projection length mismatch");
    assert!(b > 0.0, "budget must be positive");
    assert!(a.iter().all(|&w| w > 0.0), "weights must be positive");

    let weighted = |tau: f64, y: &[f64]| -> f64 {
        y.iter()
            .zip(a)
            .map(|(&yi, &ai)| ai * (yi - tau * ai).max(0.0))
            .sum()
    };

    // Bracket τ. At τ_hi every coordinate clamps to zero (sum 0 < b); at
    // τ_lo the sum exceeds b.
    let mut tau_hi = y
        .iter()
        .zip(a)
        .map(|(&yi, &ai)| yi / ai)
        .fold(f64::NEG_INFINITY, f64::max)
        .max(0.0);
    let mut tau_lo = tau_hi.min(0.0) - 1.0;
    while weighted(tau_lo, y) < b {
        let span = (tau_hi - tau_lo).max(1.0);
        tau_lo -= span; // double the bracket downward
    }
    for _ in 0..200 {
        let mid = 0.5 * (tau_lo + tau_hi);
        if weighted(mid, y) > b {
            tau_lo = mid;
        } else {
            tau_hi = mid;
        }
        if tau_hi - tau_lo < 1e-15 * (1.0 + tau_hi.abs()) {
            break;
        }
    }
    let tau = 0.5 * (tau_lo + tau_hi);
    for (yi, &ai) in y.iter_mut().zip(a) {
        *yi = (*yi - tau * ai).max(0.0);
    }
    // Snap the constraint exactly (bisection leaves a tiny residual).
    let used: f64 = y.iter().zip(a).map(|(&yi, &ai)| ai * yi).sum();
    if used > 0.0 {
        let scale = b / used;
        for yi in y.iter_mut() {
            *yi *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lagrange::LagrangeSolver;

    #[test]
    fn projection_identity_when_feasible() {
        let mut y = vec![1.0, 2.0, 3.0];
        let a = vec![1.0, 1.0, 1.0];
        project_weighted_simplex(&mut y, &a, 6.0);
        for (got, want) in y.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn projection_hits_budget_and_nonnegativity() {
        let mut y = vec![5.0, -3.0, 2.0, 0.1];
        let a = vec![1.0, 2.0, 0.5, 1.5];
        project_weighted_simplex(&mut y, &a, 4.0);
        let used: f64 = y.iter().zip(&a).map(|(&x, &w)| w * x).sum();
        assert!((used - 4.0).abs() < 1e-9, "budget tight: {used}");
        assert!(y.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn projection_clamps_negative_to_zero() {
        let mut y = vec![10.0, -100.0];
        let a = vec![1.0, 1.0];
        project_weighted_simplex(&mut y, &a, 5.0);
        assert!((y[0] - 5.0).abs() < 1e-9);
        assert_eq!(y[1], 0.0);
    }

    #[test]
    fn projection_is_idempotent() {
        let mut y = vec![3.0, 0.5, 7.0, 1.0];
        let a = vec![1.0, 4.0, 0.25, 2.0];
        project_weighted_simplex(&mut y, &a, 3.0);
        let first = y.clone();
        project_weighted_simplex(&mut y, &a, 3.0);
        for (f1, f2) in first.iter().zip(&y) {
            assert!((f1 - f2).abs() < 1e-8);
        }
    }

    #[test]
    fn gradient_ascent_matches_exact_solver() {
        let problem = Problem::builder()
            .change_rates(vec![1.0, 2.0, 3.0, 4.0, 5.0])
            .access_probs(vec![0.2; 5])
            .bandwidth(5.0)
            .build()
            .unwrap();
        let exact = LagrangeSolver::default().solve(&problem).unwrap();
        let pg = ProjectedGradientSolver::default().solve(&problem).unwrap();
        assert!(
            pg.perceived_freshness >= exact.perceived_freshness - 1e-4,
            "pg {} vs exact {}",
            pg.perceived_freshness,
            exact.perceived_freshness
        );
        assert!(pg.perceived_freshness <= exact.perceived_freshness + 1e-9);
    }

    #[test]
    fn gradient_ascent_matches_exact_on_skewed_profile() {
        let probs: Vec<f64> = (1..=5).rev().map(|i| i as f64 / 15.0).collect();
        let problem = Problem::builder()
            .change_rates(vec![1.0, 2.0, 3.0, 4.0, 5.0])
            .access_probs(probs)
            .bandwidth(5.0)
            .build()
            .unwrap();
        let exact = LagrangeSolver::default().solve(&problem).unwrap();
        let pg = ProjectedGradientSolver::default().solve(&problem).unwrap();
        assert!(pg.perceived_freshness >= exact.perceived_freshness - 1e-4);
    }

    #[test]
    fn gradient_ascent_handles_sizes() {
        let problem = Problem::builder()
            .change_rates(vec![2.0, 2.0])
            .access_probs(vec![0.5, 0.5])
            .sizes(vec![1.0, 4.0])
            .bandwidth(4.0)
            .build()
            .unwrap();
        let pg = ProjectedGradientSolver::default().solve(&problem).unwrap();
        assert!((pg.bandwidth_used - 4.0).abs() < 1e-6);
        assert!(
            pg.frequencies[0] > pg.frequencies[1],
            "small object refreshes more"
        );
    }

    #[test]
    fn iteration_budget_respected() {
        let problem = Problem::builder()
            .change_rates((0..100).map(|i| 0.5 + i as f64 * 0.05).collect())
            .access_weights((0..100).map(|i| 1.0 / (i + 1) as f64).collect())
            .bandwidth(25.0)
            .build()
            .unwrap();
        let solver = ProjectedGradientSolver {
            max_iters: 5,
            ..Default::default()
        };
        let sol = solver.solve(&problem).unwrap();
        assert!(sol.iterations <= 5);
        assert!(problem.is_feasible(&sol.frequencies, 1e-6));
    }

    #[test]
    fn recorder_counts_iterations() {
        let problem = Problem::builder()
            .change_rates(vec![1.0, 2.0, 3.0])
            .access_probs(vec![0.5, 0.3, 0.2])
            .bandwidth(3.0)
            .build()
            .unwrap();
        let rec = Recorder::enabled();
        let sol = ProjectedGradientSolver::default()
            .with_recorder(rec.clone())
            .solve(&problem)
            .unwrap();
        assert_eq!(rec.counter_value("solver.pg.solves"), Some(1));
        assert_eq!(
            rec.counter_value("solver.pg.iters"),
            Some(sol.iterations as u64)
        );
        let obj = rec.gauge_value("solver.pg.objective").unwrap();
        assert!((obj - sol.perceived_freshness).abs() < 1e-12);
    }
}
