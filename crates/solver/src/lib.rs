//! # freshen-solver
//!
//! Solvers for the perceived-freshness bandwidth-allocation problem
//! (the paper's Core Problem §2.1 and Extended Problem §5.1):
//!
//! maximize `Σ pᵢ·F̄(fᵢ, λᵢ)` subject to `Σ sᵢ·fᵢ = B`, `fᵢ ≥ 0`.
//!
//! * [`lagrange`] — the **exact** solution by the method of Lagrange
//!   multipliers (the paper's Appendix), implemented as a water-filling
//!   scheme: an outer bisection on the multiplier `μ` with an inner
//!   safeguarded-Newton solve of `pᵢ·∂F̄/∂f = μ·sᵢ` per element. Runs in
//!   `O(N)` per multiplier probe and reproduces the paper's Table 1 to two
//!   decimals.
//! * [`repair`] — **incremental KKT repair**: when drift touched only a
//!   small subset of elements, re-water-fill from the previous optimum and
//!   patch the multiplier by safeguarded Newton on the budget residual
//!   (3–5 probes) instead of re-running the full outer bisection. Always
//!   paired with the strict [`SolutionAudit`](freshen_core::SolutionAudit)
//!   certificate ("repair then certify").
//! * [`projected_gradient`] — a *generic* non-linear-programming solver
//!   (projected gradient ascent on the weighted simplex). This stands in
//!   for the proprietary IMSL library the authors used and exists to
//!   reproduce the §3 scalability narrative: a generic NLP iterates many
//!   times over all `N` variables and falls behind the specialized solver
//!   and the heuristics as `N` grows.
//! * [`tiered`] — the **multi-tier relay** solver: block-coordinate
//!   ascent over a `freshen_core::topology` DAG with per-tier budgets,
//!   adjoint marginal-value weights, per-tier inner water-filling on the
//!   flat solver, an outer shared-price budget-split search, and strict
//!   per-tier KKT certification.
//! * [`baselines`] — interest-blind comparators from related work:
//!   uniform allocation, change-proportional ("TTL-ish") allocation, and a
//!   sampling-based greedy policy in the spirit of Cho & Ntoulas
//!   (the paper's ref \[6\]).
//!
//! The paper's **GF technique** (Cho & Garcia-Molina's average-freshness
//! scheduler, its ref \[5\]) is the exact solver applied to a uniform
//! profile; see [`solve_general_freshness`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod baselines;
pub mod lagrange;
pub mod projected_gradient;
pub mod repair;
pub mod tiered;

pub use lagrange::LagrangeSolver;
pub use projected_gradient::ProjectedGradientSolver;
pub use repair::RepairOutcome;
pub use tiered::{TieredSolution, TieredSolver};

use freshen_core::error::Result;
use freshen_core::problem::{Problem, Solution};

/// Solve for the perceived-freshness-optimal schedule (the paper's **PF
/// technique**) with default solver settings.
pub fn solve_perceived_freshness(problem: &Problem) -> Result<Solution> {
    LagrangeSolver::default().solve(problem)
}

/// Solve with the interest-blind objective (the paper's **GF technique**,
/// i.e. Cho & Garcia-Molina's average-freshness scheduler), then evaluate
/// the resulting schedule against the *true* profile of `problem`.
///
/// The returned [`Solution`]'s `perceived_freshness` is therefore "what
/// users actually experience under a profile-blind schedule" — the quantity
/// plotted as `GF_TECHNIQUE` in the paper's Figure 3.
pub fn solve_general_freshness(problem: &Problem) -> Result<Solution> {
    let uniform = problem.with_uniform_interest();
    let sol = LagrangeSolver::default().solve(&uniform)?;
    let mut evaluated = Solution::evaluate(problem, sol.frequencies);
    evaluated.multiplier = sol.multiplier;
    evaluated.iterations = sol.iterations;
    Ok(evaluated)
}
