//! Exact solution of the freshening problem by Lagrange multipliers.
//!
//! The paper's Appendix shows the optimum satisfies, for some multiplier
//! `μ ≥ 0`,
//!
//! ```text
//! pᵢ · ∂F̄(fᵢ, λᵢ)/∂fᵢ = μ·sᵢ     whenever fᵢ > 0,
//! pᵢ / λᵢ             ≤ μ·sᵢ     whenever fᵢ = 0,
//! Σ sᵢ·fᵢ = B.
//! ```
//!
//! (`sᵢ = 1` in the core problem; the extended problem's constraint
//! `Σ sᵢfᵢ = B` contributes the `sᵢ` factor on the right.) Because `F̄` is
//! strictly concave in `f`, the marginal value `g(f) = ∂F̄/∂f` is strictly
//! decreasing, so for a fixed `μ` each `fᵢ(μ)` is the unique root of a
//! monotone scalar equation, and `Σ sᵢ·fᵢ(μ)` is itself monotone
//! decreasing in `μ`. The solver therefore:
//!
//! 1. brackets `μ` between 0 and `max pᵢ/(λᵢsᵢ)` (above which no element
//!    receives bandwidth),
//! 2. bisects `μ` until the consumed bandwidth equals `B`,
//! 3. solves each inner equation with safeguarded Newton (bisection
//!    fallback) using the closed-form second derivative.
//!
//! This replaces the authors' generic IMSL non-linear-programming package
//! with a specialized `O(N·log(1/ε))` scheme that produces the *same*
//! optimum (it solves the same KKT system) — validated against the
//! paper's published Table 1 numbers.
//!
//! # Parallel evaluation and the two-level sharded solve
//!
//! Each outer bisection probe evaluates `N` independent scalar root
//! solves, so the inner loop parallelizes embarrassingly: the active set
//! is split into fixed chunks and each chunk's water-filling runs on the
//! solver's [`Executor`], with per-chunk bandwidth partials merged in
//! chunk order (compensated) so results match the serial path exactly.
//!
//! [`solve_sharded`](LagrangeSolver::solve_sharded) is the two-level
//! mode: a [`ShardedProblem`] partitions the elements into `K` shards and
//! the outer bisection drives *per-shard* inner water-filling solved in
//! parallel, one shard per chunk. This is provably equivalent to the
//! global solve: the constraint `Σ sᵢfᵢ = B` is the only coupling between
//! elements, so at the optimum every shard's KKT stationarity condition
//! references the *same* multiplier `μ*` — the implicit per-shard budgets
//! `B_j(μ)` are whatever each shard consumes at that shared water level,
//! and they automatically sum to `B` when the outer bisection converges.

use std::ops::Range;

use freshen_core::error::{CoreError, Result};
use freshen_core::exec::{chunk_ranges, Executor, DEFAULT_CHUNK};
use freshen_core::numeric::NeumaierSum;
use freshen_core::policy::SyncPolicy;
use freshen_core::problem::{Problem, Solution};
use freshen_core::shard::ShardedProblem;
use freshen_core::soa::PackedColumns;
use freshen_obs::Recorder;

/// Change rates below this are treated as "static": the element is always
/// fresh and never worth bandwidth.
pub(crate) const STATIC_RATE: f64 = 1e-12;

/// Exact KKT/water-filling solver.
#[derive(Debug, Clone)]
pub struct LagrangeSolver {
    /// Relative tolerance on the bandwidth constraint.
    pub budget_tol: f64,
    /// Maximum outer bisection iterations on the multiplier.
    pub max_outer: usize,
    /// Maximum inner Newton/bisection iterations per element.
    pub max_inner: usize,
    /// Synchronization policy whose freshness law is optimized (the paper
    /// uses Fixed Order; Poisson is provided for the policy ablation).
    pub policy: SyncPolicy,
    /// Observability sink (disabled by default; see `freshen-obs`).
    pub recorder: Recorder,
    /// Execution strategy for the per-probe water-filling pass (serial by
    /// default; see [`Executor`]). Results are identical at any worker
    /// count.
    pub executor: Executor,
    /// Per-poll cost weight `γ ≥ 0`: the solver maximizes
    /// `PF − γ·Σ cᵢfᵢ` instead of bare PF. At the default 0 every code
    /// path is bitwise identical to the cost-blind solve (the levy terms
    /// reduce to exact `+0.0`s). With `γ > 0` the stationarity target
    /// becomes `pᵢ·g(fᵢ) = μ·sᵢ + γ·cᵢ` and the budget may legitimately
    /// go unspent (`μ = 0`, an *interior* optimum) once the marginal
    /// freshness of a poll no longer covers its price.
    pub cost_weight: f64,
}

impl Default for LagrangeSolver {
    fn default() -> Self {
        LagrangeSolver {
            budget_tol: 1e-10,
            max_outer: 200,
            max_inner: 100,
            policy: SyncPolicy::FixedOrder,
            recorder: Recorder::disabled(),
            executor: Executor::serial(),
            cost_weight: 0.0,
        }
    }
}

impl LagrangeSolver {
    /// Solve the problem to optimality.
    ///
    /// Returns the optimal frequencies, the achieved metrics, and the
    /// multiplier `μ*`. Elements with zero interest or (near-)zero change
    /// rate receive zero bandwidth, as the KKT conditions require.
    pub fn solve(&self, problem: &Problem) -> Result<Solution> {
        self.solve_impl(problem, None)
    }

    /// Solve with a warm-start hint for the multiplier — typically the
    /// `multiplier` of the previous period's [`Solution`].
    ///
    /// The paper's §3 motivation is *periodic* re-solving as profiles and
    /// change rates drift; successive optima have nearby multipliers, so
    /// bracketing around the old `μ*` instead of the full
    /// `(0, max pᵢ/(λᵢsᵢ))` range cuts the outer iterations roughly in
    /// half. Invalid hints (non-positive, non-finite, or beyond the
    /// starvation bound) are ignored and the cold path runs; the returned
    /// solution is always the same optimum either way.
    pub fn solve_warm(&self, problem: &Problem, multiplier_hint: f64) -> Result<Solution> {
        self.solve_impl(problem, Some(multiplier_hint))
    }

    /// Attach an observability recorder (builder form; the `recorder`
    /// field can also be set directly).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attach an execution strategy (builder form; the `executor` field
    /// can also be set directly). The optimum is identical at any worker
    /// count — only wall-clock time changes.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Set the per-poll cost weight `γ` (builder form; the `cost_weight`
    /// field can also be set directly). See the field docs for the
    /// objective change.
    pub fn with_cost_weight(mut self, cost_weight: f64) -> Self {
        self.cost_weight = cost_weight;
        self
    }

    /// Solve `max PF` subject to `Σ sᵢfᵢ ≤ B` **and** `Σ cᵢfᵢ ≤ C`: the
    /// cost-budget-constrained variant. Returns the optimum together with
    /// the cost constraint's shadow price in `cost_multiplier`.
    ///
    /// The cost constraint is dualized: for a levy `γ ≥ 0`, a
    /// [`cost_weight`](Self::cost_weight) solve maximizes `PF − γ·cost`,
    /// and the spend of that solution is monotone non-increasing in `γ`
    /// (a larger levy prices more polls out). The method therefore probes
    /// `γ = 0` first — if the cost-blind optimum already fits in `C`, the
    /// constraint is slack and the plain solve is returned — and
    /// otherwise geometrically bisects `γ` on
    /// `(0, max pᵢ/(λᵢcᵢ)]` (above which nothing is polled and the spend
    /// is 0) until the spend matches `C`. Each probe is a full inner
    /// solve, warm-started from the previous probe's water level. If the
    /// spend jumps across `C` at a starvation threshold and the bracket
    /// exhausts, the feasible (`spend ≤ C`) side is returned, so the cost
    /// budget is never overdrawn.
    pub fn solve_cost_budget(&self, problem: &Problem, cost_budget: f64) -> Result<Solution> {
        if !cost_budget.is_finite() || cost_budget <= 0.0 {
            return Err(CoreError::InvalidValue {
                what: "cost budget",
                index: None,
                value: cost_budget,
            });
        }
        let rec = &self.recorder;
        rec.counter("solver.cost_budget_solves").inc();

        // γ = 0 probe: plain (cost-blind) solve.
        let base = LagrangeSolver {
            cost_weight: 0.0,
            ..self.clone()
        };
        let plain = base.solve(problem)?;
        if problem.cost_used(&plain.frequencies) <= cost_budget {
            return Ok(plain); // cost constraint slack; shadow price 0
        }

        // γ upper bound: above the largest p/(λc) the levy exceeds every
        // element's zero-frequency marginal value and nothing is polled.
        // Zero-cost elements are exempt from the levy and impose no bound.
        let p = problem.access_probs();
        let lam = problem.change_rates();
        let gamma_limit = (0..problem.len())
            .filter(|&i| p[i] > 0.0 && lam[i] > STATIC_RATE && problem.poll_cost(i) > 0.0)
            .map(|i| p[i] / (lam[i] * problem.poll_cost(i)))
            .fold(0.0f64, f64::max);
        if gamma_limit <= 0.0 {
            // Every active element polls for free, yet the spend exceeds
            // the cost budget: no levy can reduce it.
            return Err(CoreError::NoConvergence {
                routine: "cost-budget dual bisection",
                iterations: 1,
                residual: (problem.cost_used(&plain.frequencies) - cost_budget) / cost_budget,
            });
        }

        let solve_at = |gamma: f64, hint: Option<f64>| -> Result<(Solution, f64)> {
            let solver = LagrangeSolver {
                cost_weight: gamma,
                ..self.clone()
            };
            let sol = match hint {
                Some(h) => solver.solve_warm(problem, h)?,
                None => solver.solve(problem)?,
            };
            let spend = problem.cost_used(&sol.frequencies);
            Ok((sol, spend))
        };

        // Bracket: spend(γ_lo) > C ≥ spend(γ_hi). γ_lo = 0 is the plain
        // solve above; γ_hi = γ_limit spends exactly 0.
        let mut gamma_lo = 0.0f64;
        let mut gamma_hi = gamma_limit;
        let mut best: Option<(Solution, f64)> = None; // feasible side
        let mut hint = plain.multiplier;
        for iter in 0..self.max_outer {
            let gamma = if gamma_lo > 0.0 {
                (gamma_lo * gamma_hi).sqrt()
            } else {
                // No positive under-budget levy known yet: walk down
                // geometrically from the kill-everything bound.
                gamma_hi * 0.25
            };
            let (sol, spend) = solve_at(gamma, hint)?;
            hint = sol.multiplier.filter(|&m| m > 0.0).or(hint);
            rec.event(
                "solver.cost_budget",
                &[
                    ("iter", &iter),
                    ("gamma", &gamma),
                    ("residual", &((spend - cost_budget) / cost_budget)),
                ],
            );
            if spend <= cost_budget {
                gamma_hi = gamma;
                let better = match &best {
                    Some((_, prev)) => spend > *prev,
                    None => true,
                };
                if better {
                    best = Some((sol, spend));
                }
                if spend >= cost_budget * (1.0 - self.budget_tol.max(1e-12) * 1e3) {
                    break; // spend within tolerance of C from below
                }
            } else {
                gamma_lo = gamma;
            }
            if gamma_lo > 0.0 && gamma_hi - gamma_lo <= gamma_hi * 1e-12 {
                break; // bracket exhausted (spend jump at a threshold)
            }
        }
        match best {
            Some((sol, _)) => Ok(sol),
            None => Err(CoreError::NoConvergence {
                routine: "cost-budget dual bisection",
                iterations: self.max_outer,
                residual: f64::INFINITY,
            }),
        }
    }

    /// Two-level sharded solve: partition the problem into `shards`
    /// contiguous-after-sort shards ([`ShardedProblem`]) and run the outer
    /// bisection with per-shard inner water-filling evaluated in parallel
    /// (one shard per executor task).
    ///
    /// Equivalent to [`solve`](Self::solve) up to float accumulation
    /// order: the bandwidth constraint is the only coupling between
    /// elements, so every shard's stationarity condition references the
    /// same multiplier `μ*` and the implicit per-shard budgets sum to `B`
    /// automatically at convergence. The shard partition therefore acts
    /// purely as a load-balanced work decomposition.
    pub fn solve_sharded(&self, problem: &Problem, shards: usize) -> Result<Solution> {
        let sharded = ShardedProblem::new(problem, shards);
        let p = problem.access_probs();
        let lam = problem.change_rates();
        // Concatenate the shards' active elements; each shard becomes one
        // chunk of the allocation pass, so shard boundaries — not worker
        // count — determine accumulation order.
        let mut active = Vec::with_capacity(problem.len());
        let mut chunks = Vec::with_capacity(sharded.num_shards());
        for shard in sharded.shards() {
            let start = active.len();
            active.extend(
                shard
                    .iter()
                    .copied()
                    .filter(|&i| p[i] > 0.0 && lam[i] > STATIC_RATE),
            );
            if active.len() > start {
                chunks.push(start..active.len());
            }
        }
        self.recorder.counter("solver.sharded_solves").inc();
        let mut cols = PackedColumns::gather(problem, &active);
        self.solve_over(problem, None, &mut cols, &chunks)
    }

    fn solve_impl(&self, problem: &Problem, hint: Option<f64>) -> Result<Solution> {
        let mut cols = self.pack_active(problem);
        // Fixed chunk boundaries (a function of the active count only)
        // keep the allocation pass bit-identical across worker counts.
        let chunks = chunk_ranges(cols.len(), DEFAULT_CHUNK);
        self.solve_over(problem, hint, &mut cols, &chunks)
    }

    /// Gather the active set — positive interest and a genuinely changing
    /// source copy — into contiguous structure-of-arrays columns. Every
    /// outer-bisection probe then sweeps linear memory; the gather happens
    /// exactly once per solve instead of once per probe.
    pub(crate) fn pack_active(&self, problem: &Problem) -> PackedColumns {
        let p = problem.access_probs();
        let lam = problem.change_rates();
        let active: Vec<usize> = (0..problem.len())
            .filter(|&i| p[i] > 0.0 && lam[i] > STATIC_RATE)
            .collect();
        PackedColumns::gather(problem, &active)
    }

    /// The shared outer bisection, parameterized over the packed active
    /// columns and the chunk decomposition used for every allocation pass
    /// (fixed-size chunks for the global solve, shard extents for
    /// [`solve_sharded`](Self::solve_sharded)). Chunk ranges index the
    /// *packed* order; the final schedule is scattered back through the
    /// pack permutation once, after convergence.
    fn solve_over(
        &self,
        problem: &Problem,
        hint: Option<f64>,
        cols: &mut PackedColumns,
        chunks: &[Range<usize>],
    ) -> Result<Solution> {
        let n = problem.len();
        let m = cols.len();
        let budget = problem.bandwidth();
        let gamma = self.cost_weight;
        if !gamma.is_finite() || gamma < 0.0 {
            return Err(CoreError::InvalidValue {
                what: "solver cost weight",
                index: None,
                value: gamma,
            });
        }

        let rec = &self.recorder;
        let mut solve_span = rec.span("solver.lagrange.solve");
        solve_span.arg("n", n);
        solve_span.arg("chunks", chunks.len());
        rec.counter("solver.solves").inc();
        let c_outer = rec.counter("solver.outer_iters");
        let c_inner = rec.counter("solver.inner_iters");

        if cols.is_empty() {
            // Nothing worth refreshing; all-zero allocation is optimal.
            let mut sol = Solution::evaluate_with_policy(problem, vec![0.0; n], self.policy);
            sol.multiplier = Some(0.0);
            if gamma > 0.0 {
                sol.cost_multiplier = Some(gamma);
            }
            return Ok(sol);
        }

        // μ upper bound: above the largest zero-frequency marginal value
        // p/(λs), every element's optimal frequency is 0. With a poll levy
        // the γ·c tax comes off the numerator first (clamped at 0: an
        // element whose levy already exceeds its marginal value never
        // receives bandwidth at any μ ≥ 0). The γ = 0 branch keeps the
        // historical `p/(λs)` expression bitwise unchanged.
        let mu_hi_limit = cols
            .p()
            .iter()
            .zip(cols.lambda())
            .zip(cols.s())
            .zip(cols.c())
            .map(|(((&p, &lam), &s), &c)| {
                if gamma > 0.0 {
                    (p / lam - gamma * c).max(0.0) / s
                } else {
                    p / (lam * s)
                }
            })
            .fold(0.0f64, f64::max);
        if mu_hi_limit <= 0.0 {
            // γ > 0 and the levy prices every element out of the market:
            // the unconstrained optimum of PF − γ·cost is the empty
            // schedule, well under budget.
            let mut sol = Solution::evaluate_with_policy(problem, vec![0.0; n], self.policy);
            sol.multiplier = Some(0.0);
            sol.cost_multiplier = Some(gamma);
            return Ok(sol);
        }

        // With a levy active the budget constraint may not bind: the μ = 0
        // allocation (each element polled until its marginal freshness
        // equals its price) can already fit inside `B`. Probe it first —
        // if it fits, it is the interior optimum and no water level is
        // needed. Zero-cost elements make the μ = 0 allocation unbounded,
        // so the probe only runs when every active element is taxed.
        if gamma > 0.0 && cols.c().iter().all(|&c| c > 0.0) {
            let (used0, inner0) = self.allocate(chunks, cols, 0.0);
            rec.event(
                "solver.outer",
                &[
                    ("phase", &"interior"),
                    ("iter", &1usize),
                    ("mu", &0.0),
                    ("residual", &((used0 - budget) / budget)),
                ],
            );
            if used0 <= budget {
                c_outer.add(1);
                c_inner.add(inner0 as u64);
                let mut freqs = vec![0.0; n];
                cols.scatter_f(&mut freqs);
                let mut sol = Solution::evaluate_with_policy(problem, freqs, self.policy);
                sol.multiplier = Some(0.0);
                sol.cost_multiplier = Some(gamma);
                sol.iterations = 1;
                return Ok(sol);
            }
        }
        let mut mu_hi = mu_hi_limit;
        let mut freqs_hi = vec![0.0; m]; // all-zero: the μ = μ_hi allocation
        let mut used_hi = 0.0;
        let mut outer_iters = 0usize;
        let mut inner_total = 0usize;

        // Starting point for the low (over-budget) side: the warm-start
        // hint when valid, the cold default otherwise.
        // Warm-start accounting: a hit is a hint the bracketing actually
        // uses; out-of-range or non-finite hints fall back to the cold path.
        let mut mu_lo = match hint {
            Some(h) if h.is_finite() && h > 0.0 && h < mu_hi_limit => {
                rec.counter("solver.warm_start.hit").inc();
                h
            }
            Some(_) => {
                rec.counter("solver.warm_start.miss").inc();
                mu_hi_limit * 1e-6
            }
            None => mu_hi_limit * 1e-6,
        };
        // Expand downward until the allocation overshoots the budget;
        // every under-budget probe along the way tightens the high side,
        // so a good hint leaves a very small bracket.
        let mut used_lo;
        loop {
            outer_iters += 1;
            let (used, inner) = self.allocate(chunks, cols, mu_lo);
            used_lo = used;
            inner_total += inner;
            rec.event(
                "solver.outer",
                &[
                    ("phase", &"bracket"),
                    ("iter", &outer_iters),
                    ("mu", &mu_lo),
                    ("residual", &((used_lo - budget) / budget)),
                ],
            );
            if used_lo >= budget {
                break;
            }
            if mu_lo < mu_hi {
                mu_hi = mu_lo;
                used_hi = used_lo;
                freqs_hi.copy_from_slice(cols.f());
            }
            mu_lo *= if hint.is_some() { 0.25 } else { 1e-3 };
            if mu_lo < mu_hi_limit * 1e-300 || outer_iters > self.max_outer {
                // Budget so large every element saturates numerically; the
                // μ→0 allocation is the best the bracket can offer and the
                // final interpolation below scales it to the budget.
                break;
            }
        }
        let mut freqs_lo = cols.f().to_vec();

        // Geometric bisection on μ (the multiplier spans many decades).
        let mut mu = mu_lo;
        let mut used = used_lo;
        for _ in 0..self.max_outer {
            outer_iters += 1;
            if (used - budget).abs() <= budget * self.budget_tol {
                break;
            }
            if mu_hi - mu_lo <= mu_hi * 1e-15 {
                break; // bracket exhausted (see threshold note below)
            }
            mu = (mu_lo * mu_hi).sqrt();
            let (probe, inner) = self.allocate(chunks, cols, mu);
            used = probe;
            inner_total += inner;
            rec.event(
                "solver.outer",
                &[
                    ("phase", &"bisect"),
                    ("iter", &outer_iters),
                    ("mu", &mu),
                    ("residual", &((used - budget) / budget)),
                ],
            );
            if used > budget {
                mu_lo = mu;
                used_lo = used;
                freqs_lo.copy_from_slice(cols.f());
            } else {
                mu_hi = mu;
                used_hi = used;
                freqs_hi.copy_from_slice(cols.f());
            }
        }

        if (used - budget).abs() <= budget * self.budget_tol {
            // Converged: snap the (already tiny) residual multiplicatively.
            if used > 0.0 {
                let scale = budget / used;
                for f in cols.f_mut() {
                    *f *= scale;
                }
            }
        } else if used_lo > used_hi && used_lo >= budget {
            // The optimum sits on (or the budget is huge relative to) a
            // starvation threshold: `f(μ)` for the boundary element jumps
            // numerically because its marginal is float-flat near `p/(λs)`
            // — `∂F̄/∂f → 1/λ` double-exponentially as f → 0 — so no float
            // μ lands inside the gap. The two bracket ends straddle the
            // budget; their convex combination is budget-exact by
            // linearity and optimal to float precision (every element that
            // differs between the ends has marginal ≈ μ* across the whole
            // interpolation range).
            let alpha = (budget - used_hi) / (used_lo - used_hi);
            for (f, (&lo, &hi)) in cols.f_mut().iter_mut().zip(freqs_lo.iter().zip(&freqs_hi)) {
                *f = alpha * lo + (1.0 - alpha) * hi;
            }
            mu = mu_lo;
        } else {
            return Err(CoreError::NoConvergence {
                routine: "lagrange outer bisection",
                iterations: outer_iters,
                residual: (used - budget).abs() / budget,
            });
        }

        c_outer.add(outer_iters as u64);
        c_inner.add(inner_total as u64);
        let mut freqs = vec![0.0; n];
        cols.scatter_f(&mut freqs);
        let mut sol = Solution::evaluate_with_policy(problem, freqs, self.policy);
        sol.multiplier = Some(mu);
        if gamma > 0.0 {
            sol.cost_multiplier = Some(gamma);
        }
        sol.iterations = outer_iters;
        Ok(sol)
    }

    /// For a fixed multiplier, fill the packed frequency column with each
    /// active element's optimal frequency; returns the bandwidth consumed
    /// and the total inner (Newton/bisection) iterations spent.
    ///
    /// Each chunk of the packed columns is water-filled as one executor
    /// task over contiguous `p`/`λ`/`s` slices — no index indirection in
    /// the inner loop. The per-chunk bandwidth partials are compensated
    /// and merged in chunk order, so the consumed total is bit-identical
    /// at any worker count.
    fn allocate(&self, chunks: &[Range<usize>], cols: &mut PackedColumns, mu: f64) -> (f64, usize) {
        let (p, lam, s) = (cols.p(), cols.lambda(), cols.s());
        let c = cols.c();
        let parts = self.executor.map_ranges(chunks, |range| {
            let mut local = Vec::with_capacity(range.len());
            let mut used = NeumaierSum::new();
            let mut inner = 0usize;
            for k in range {
                let (f, iters) = self.element_frequency_counted(p[k], lam[k], s[k], c[k], mu);
                local.push(f);
                used.add(s[k] * f);
                inner += iters;
            }
            (local, used, inner)
        });
        let freqs = cols.f_mut();
        let mut used = NeumaierSum::new();
        let mut inner = 0usize;
        for (range, (local, part_used, part_inner)) in chunks.iter().zip(parts) {
            freqs[range.clone()].copy_from_slice(&local);
            used.merge(part_used);
            inner += part_inner;
        }
        (used.total(), inner)
    }

    /// Solve `p·g(f; λ) = μ·s + γ·c` for `f ≥ 0` (unique root; 0 when the
    /// zero-frequency marginal value already falls below the levy-adjusted
    /// threshold). With the solver's default `cost_weight = 0` the levy
    /// vanishes and this is exactly `p·g(f; λ) = μ·s`.
    ///
    /// Public because it *is* the paper's Figure 1: for a fixed water level
    /// `μ`, this maps a (p, λ) pair to the sync frequency the optimum would
    /// grant it — the solution locus `∂F̄/∂f = μ/p` (paper Eq. 6). The
    /// unit-cost `c = 1.0` is assumed here; cost-aware callers go through
    /// [`element_frequency_costed`](Self::element_frequency_costed).
    pub fn element_frequency(&self, p: f64, lam: f64, s: f64, mu: f64) -> f64 {
        self.element_frequency_counted(p, lam, s, 1.0, mu).0
    }

    /// [`element_frequency`](Self::element_frequency) with an explicit
    /// per-poll cost `c` for the `γ·c` levy term.
    pub fn element_frequency_costed(&self, p: f64, lam: f64, s: f64, c: f64, mu: f64) -> f64 {
        self.element_frequency_counted(p, lam, s, c, mu).0
    }

    /// [`element_frequency`](Self::element_frequency) plus the inner
    /// iteration count, for instrumentation.
    pub(crate) fn element_frequency_counted(
        &self,
        p: f64,
        lam: f64,
        s: f64,
        c: f64,
        mu: f64,
    ) -> (f64, usize) {
        // Target marginal value of F̄ alone: the budget shadow price plus
        // the per-poll levy, in freshness-per-poll units. At
        // `cost_weight = 0` the levy term is an exact `+0.0` and the
        // target reduces bitwise to the cost-blind `μ·s/p`.
        let t = (mu * s + self.cost_weight * c) / p;
        if t >= 1.0 / lam {
            return (0.0, 0); // not worth any bandwidth at this water level
        }
        // Bracket the root: g(f) ~ λ/(2f²) for f ≫ λ gives a starting
        // point; expand until g < t.
        let mut lo = 0.0f64;
        let mut hi = (lam / (2.0 * t)).sqrt().max(lam).max(1e-12);
        let mut g_hi = self.policy.gradient(lam, hi);
        let mut expand = 0;
        while g_hi > t {
            lo = hi;
            hi *= 2.0;
            g_hi = self.policy.gradient(lam, hi);
            expand += 1;
            if expand > 200 {
                return (hi, expand); // t is numerically 0; effectively unbounded
            }
        }
        // Safeguarded Newton on h(f) = g(f) − t, h decreasing.
        let mut f = 0.5 * (lo + hi);
        let mut iters = 0;
        for _ in 0..self.max_inner {
            iters += 1;
            let h = self.policy.gradient(lam, f) - t;
            if h.abs() <= t * 1e-12 {
                break;
            }
            if h > 0.0 {
                lo = f;
            } else {
                hi = f;
            }
            let dh = self.policy.second_derivative(lam, f);
            let newton = if dh < 0.0 { f - h / dh } else { f64::NAN };
            f = if newton.is_finite() && newton > lo && newton < hi {
                newton
            } else {
                0.5 * (lo + hi)
            };
            if (hi - lo) <= f * 1e-14 {
                break;
            }
        }
        (f, iters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshen_core::freshness::{freshness_gradient, perceived_freshness};

    fn toy(probs: Vec<f64>) -> Problem {
        Problem::builder()
            .change_rates(vec![1.0, 2.0, 3.0, 4.0, 5.0])
            .access_probs(probs)
            .bandwidth(5.0)
            .build()
            .unwrap()
    }

    fn assert_close(actual: &[f64], expected: &[f64], tol: f64) {
        assert_eq!(actual.len(), expected.len());
        for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
            assert!(
                (a - e).abs() <= tol,
                "index {i}: got {a:.4}, expected {e:.4} (all: {actual:?})"
            );
        }
    }

    // ---- The paper's Table 1 -------------------------------------------

    #[test]
    fn table1_row_b_uniform_profile() {
        // P1 = uniform: matches Cho & Garcia-Molina's classic example.
        let sol = LagrangeSolver::default().solve(&toy(vec![0.2; 5])).unwrap();
        assert_close(&sol.frequencies, &[1.15, 1.36, 1.35, 1.14, 0.00], 0.01);
    }

    #[test]
    fn table1_row_c_aligned_profile() {
        // P2 = (1..5)/15: pᵢ ∝ λᵢ ⇒ fᵢ = B·pᵢ exactly.
        let probs: Vec<f64> = (1..=5).map(|i| i as f64 / 15.0).collect();
        let sol = LagrangeSolver::default().solve(&toy(probs)).unwrap();
        assert_close(
            &sol.frequencies,
            &[1.0 / 3.0, 2.0 / 3.0, 1.0, 4.0 / 3.0, 5.0 / 3.0],
            0.01,
        );
    }

    #[test]
    fn table1_row_d_reverse_profile() {
        // P3 = (5..1)/15.
        let probs: Vec<f64> = (1..=5).rev().map(|i| i as f64 / 15.0).collect();
        let sol = LagrangeSolver::default().solve(&toy(probs)).unwrap();
        assert_close(&sol.frequencies, &[1.68, 1.83, 1.49, 0.00, 0.00], 0.01);
    }

    // ---- KKT / optimality structure ------------------------------------

    #[test]
    fn budget_is_consumed_exactly() {
        let sol = LagrangeSolver::default().solve(&toy(vec![0.2; 5])).unwrap();
        assert!((sol.bandwidth_used - 5.0).abs() < 1e-8);
        assert!(sol.frequencies.iter().all(|&f| f >= 0.0));
    }

    #[test]
    fn kkt_stationarity_holds() {
        let problem = toy(vec![0.1, 0.2, 0.3, 0.25, 0.15]);
        let sol = LagrangeSolver::default().solve(&problem).unwrap();
        let mu = sol.multiplier.unwrap();
        for i in 0..5 {
            let f = sol.frequencies[i];
            let p = problem.access_probs()[i];
            let lam = problem.change_rates()[i];
            if f > 1e-9 {
                let marginal = p * freshness_gradient(lam, f);
                assert!(
                    (marginal - mu).abs() < mu * 1e-4,
                    "element {i}: marginal {marginal:.6e} vs μ {mu:.6e}"
                );
            } else {
                assert!(
                    p / lam <= mu * (1.0 + 1e-6),
                    "starved element must satisfy KKT"
                );
            }
        }
    }

    #[test]
    fn optimal_beats_feasible_alternatives() {
        let problem = toy(vec![0.3, 0.1, 0.25, 0.05, 0.3]);
        let opt = LagrangeSolver::default().solve(&problem).unwrap();
        let candidates: [&[f64]; 4] = [
            &[1.0; 5],
            &[5.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0, 5.0],
            &[2.5, 0.5, 1.0, 0.5, 0.5],
        ];
        for cand in candidates {
            let pf = problem.perceived_freshness(cand);
            assert!(
                opt.perceived_freshness >= pf - 1e-9,
                "optimal {} must beat candidate {} ({cand:?})",
                opt.perceived_freshness,
                pf
            );
        }
    }

    #[test]
    fn zero_interest_elements_starved() {
        let problem = Problem::builder()
            .change_rates(vec![1.0, 1.0, 1.0])
            .access_probs(vec![0.5, 0.5, 0.0])
            .bandwidth(3.0)
            .build()
            .unwrap();
        let sol = LagrangeSolver::default().solve(&problem).unwrap();
        assert_eq!(sol.frequencies[2], 0.0);
        assert!(sol.frequencies[0] > 0.0 && sol.frequencies[1] > 0.0);
        // Identical active elements split the budget evenly.
        assert!((sol.frequencies[0] - sol.frequencies[1]).abs() < 1e-6);
    }

    #[test]
    fn static_elements_starved() {
        let problem = Problem::builder()
            .change_rates(vec![0.0, 2.0])
            .access_probs(vec![0.9, 0.1])
            .bandwidth(1.0)
            .build()
            .unwrap();
        let sol = LagrangeSolver::default().solve(&problem).unwrap();
        assert_eq!(sol.frequencies[0], 0.0, "static object needs no bandwidth");
        assert!((sol.frequencies[1] - 1.0).abs() < 1e-8);
        // The static hot object still contributes p·1 to PF.
        assert!(sol.perceived_freshness > 0.9);
    }

    #[test]
    fn all_static_problem_allocates_nothing() {
        let problem = Problem::builder()
            .change_rates(vec![0.0, 0.0])
            .access_probs(vec![0.5, 0.5])
            .bandwidth(1.0)
            .build()
            .unwrap();
        let sol = LagrangeSolver::default().solve(&problem).unwrap();
        assert_eq!(sol.frequencies, vec![0.0, 0.0]);
        assert!((sol.perceived_freshness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_element_gets_everything() {
        let problem = Problem::builder()
            .change_rates(vec![3.0])
            .access_probs(vec![1.0])
            .bandwidth(7.0)
            .build()
            .unwrap();
        let sol = LagrangeSolver::default().solve(&problem).unwrap();
        assert!((sol.frequencies[0] - 7.0).abs() < 1e-8);
    }

    // ---- Sized (extended) problem ---------------------------------------

    #[test]
    fn sized_problem_respects_weighted_budget() {
        let problem = Problem::builder()
            .change_rates(vec![2.0, 2.0, 2.0])
            .access_probs(vec![1.0 / 3.0; 3])
            .sizes(vec![1.0, 2.0, 4.0])
            .bandwidth(6.0)
            .build()
            .unwrap();
        let sol = LagrangeSolver::default().solve(&problem).unwrap();
        assert!((sol.bandwidth_used - 6.0).abs() < 1e-8);
        // Identical except size: smaller objects get more refreshes.
        assert!(sol.frequencies[0] > sol.frequencies[1]);
        assert!(sol.frequencies[1] > sol.frequencies[2]);
    }

    #[test]
    fn sized_kkt_stationarity() {
        let problem = Problem::builder()
            .change_rates(vec![1.0, 3.0, 2.0])
            .access_probs(vec![0.5, 0.3, 0.2])
            .sizes(vec![0.5, 1.5, 3.0])
            .bandwidth(4.0)
            .build()
            .unwrap();
        let sol = LagrangeSolver::default().solve(&problem).unwrap();
        let mu = sol.multiplier.unwrap();
        for i in 0..3 {
            let f = sol.frequencies[i];
            if f > 1e-9 {
                let marginal = problem.access_probs()[i]
                    * freshness_gradient(problem.change_rates()[i], f)
                    / problem.sizes()[i];
                assert!(
                    (marginal - mu).abs() < mu * 1e-4,
                    "element {i}: marginal/s {marginal:.6e} vs μ {mu:.6e}"
                );
            }
        }
    }

    #[test]
    fn size_blind_schedule_is_worse_on_sized_world() {
        // Paper Figure 10/§5.3: ignoring sizes wastes bandwidth on large
        // objects. Solve both ways, evaluate both on the sized problem.
        let n = 50;
        let sizes: Vec<f64> = (0..n).map(|i| 0.2 + 3.0 * (i as f64 / n as f64)).collect();
        let problem = Problem::builder()
            .change_rates((0..n).map(|i| 0.5 + i as f64 * 0.1).collect())
            .access_probs(vec![1.0 / n as f64; n])
            .sizes(sizes)
            .bandwidth(20.0)
            .build()
            .unwrap();
        let aware = LagrangeSolver::default().solve(&problem).unwrap();

        let blind_sol = LagrangeSolver::default()
            .solve(&problem.with_uniform_sizes())
            .unwrap();
        // The size-blind schedule overdraws the real (sized) budget; scale
        // it down to feasibility before comparing.
        let used = problem.bandwidth_used(&blind_sol.frequencies);
        let scale = problem.bandwidth() / used;
        let blind: Vec<f64> = blind_sol.frequencies.iter().map(|f| f * scale).collect();

        let blind_pf = problem.perceived_freshness(&blind);
        assert!(
            aware.perceived_freshness > blind_pf + 0.01,
            "size-aware {} vs size-blind {}",
            aware.perceived_freshness,
            blind_pf
        );
    }

    // ---- Poisson-policy solves -------------------------------------------

    #[test]
    fn poisson_policy_matches_closed_form() {
        // Under the Poisson law the KKT system has a closed form:
        // pλ/(λ+f)² = μ  ⇒  f = max(0, sqrt(pλ/μ) − λ).
        let problem = toy(vec![0.1, 0.2, 0.3, 0.25, 0.15]);
        let solver = LagrangeSolver {
            policy: SyncPolicy::Poisson,
            ..Default::default()
        };
        let sol = solver.solve(&problem).unwrap();
        let mu = sol.multiplier.unwrap();
        for i in 0..5 {
            let p = problem.access_probs()[i];
            let lam = problem.change_rates()[i];
            let expected = ((p * lam / mu).sqrt() - lam).max(0.0);
            assert!(
                (sol.frequencies[i] - expected).abs() < 1e-5 * (1.0 + expected),
                "element {i}: {} vs closed form {expected}",
                sol.frequencies[i]
            );
        }
        assert!((sol.bandwidth_used - 5.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_order_optimum_dominates_poisson_optimum() {
        // Optimizing under the better freshness law yields better
        // freshness: PF*_fixed ≥ PF*_poisson on the same instance.
        let problem = toy(vec![0.3, 0.25, 0.2, 0.15, 0.1]);
        let fixed = LagrangeSolver::default().solve(&problem).unwrap();
        let poisson = LagrangeSolver {
            policy: SyncPolicy::Poisson,
            ..Default::default()
        }
        .solve(&problem)
        .unwrap();
        assert!(
            fixed.perceived_freshness > poisson.perceived_freshness,
            "fixed-order optimum {} must beat poisson optimum {}",
            fixed.perceived_freshness,
            poisson.perceived_freshness
        );
    }

    // ---- Scaling sanity --------------------------------------------------

    #[test]
    fn moderate_problem_solves_quickly_and_tightly() {
        let n = 2000;
        let problem = Problem::builder()
            .change_rates((0..n).map(|i| 0.1 + (i % 17) as f64 * 0.3).collect())
            .access_weights((0..n).map(|i| 1.0 / (i + 1) as f64).collect())
            .bandwidth(n as f64 / 4.0)
            .build()
            .unwrap();
        let sol = LagrangeSolver::default().solve(&problem).unwrap();
        assert!((sol.bandwidth_used - problem.bandwidth()).abs() < problem.bandwidth() * 1e-6);
        // PF must beat uniform spreading.
        let uniform_pf = perceived_freshness(
            problem.access_probs(),
            problem.change_rates(),
            &vec![0.25; n],
        );
        assert!(sol.perceived_freshness >= uniform_pf - 1e-9);
    }

    #[test]
    fn warm_start_reaches_same_optimum_faster() {
        let problem = toy(vec![0.3, 0.25, 0.2, 0.15, 0.1]);
        let solver = LagrangeSolver::default();
        let cold = solver.solve(&problem).unwrap();
        let warm = solver
            .solve_warm(&problem, cold.multiplier.unwrap())
            .unwrap();
        for (a, b) in cold.frequencies.iter().zip(&warm.frequencies) {
            assert!((a - b).abs() < 1e-6, "warm and cold optima agree");
        }
        assert!(
            warm.iterations < cold.iterations,
            "warm start should save iterations: warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn warm_start_survives_profile_drift() {
        // Re-solve after the profile shifts, warm-started from the stale
        // multiplier: same optimum as cold solving the new problem.
        let solver = LagrangeSolver::default();
        let old = solver.solve(&toy(vec![0.2; 5])).unwrap();
        let drifted = toy(vec![0.35, 0.25, 0.2, 0.12, 0.08]);
        let warm = solver
            .solve_warm(&drifted, old.multiplier.unwrap())
            .unwrap();
        let cold = solver.solve(&drifted).unwrap();
        for (a, b) in cold.frequencies.iter().zip(&warm.frequencies) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn warm_start_ignores_garbage_hints() {
        let problem = toy(vec![0.2; 5]);
        let solver = LagrangeSolver::default();
        let cold = solver.solve(&problem).unwrap();
        for hint in [0.0, -1.0, f64::NAN, f64::INFINITY, 1e9] {
            let warm = solver.solve_warm(&problem, hint).unwrap();
            for (a, b) in cold.frequencies.iter().zip(&warm.frequencies) {
                assert!((a - b).abs() < 1e-6, "hint {hint}: optima must agree");
            }
        }
    }

    #[test]
    fn more_bandwidth_never_hurts() {
        let probs = vec![0.4, 0.3, 0.2, 0.1];
        let rates = vec![2.0, 1.0, 4.0, 0.5];
        let mut last_pf = 0.0;
        for budget in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0] {
            let problem = Problem::builder()
                .change_rates(rates.clone())
                .access_probs(probs.clone())
                .bandwidth(budget)
                .build()
                .unwrap();
            let sol = LagrangeSolver::default().solve(&problem).unwrap();
            assert!(
                sol.perceived_freshness >= last_pf - 1e-9,
                "PF must be monotone in bandwidth"
            );
            last_pf = sol.perceived_freshness;
        }
        assert!(last_pf > 0.9, "ample bandwidth approaches full freshness");
    }

    // ---- Parallel / sharded modes ---------------------------------------

    fn scale_problem(n: usize) -> Problem {
        Problem::builder()
            .change_rates((0..n).map(|i| 0.1 + (i % 17) as f64 * 0.3).collect())
            .access_weights((0..n).map(|i| 1.0 / (i + 1) as f64).collect())
            .sizes((0..n).map(|i| 0.25 + (i % 7) as f64 * 0.5).collect())
            .bandwidth(n as f64 / 4.0)
            .build()
            .unwrap()
    }

    #[test]
    fn pool_solve_is_bit_identical_to_serial() {
        // Fixed chunk boundaries + in-order compensated merges: the pool
        // must reproduce the serial optimum exactly, not approximately.
        let problem = scale_problem(20_000);
        let serial = LagrangeSolver::default().solve(&problem).unwrap();
        for workers in [2, 4] {
            let pooled = LagrangeSolver::default()
                .with_executor(Executor::thread_pool(workers))
                .solve(&problem)
                .unwrap();
            assert_eq!(serial.frequencies, pooled.frequencies, "workers={workers}");
            assert_eq!(serial.iterations, pooled.iterations);
            assert_eq!(serial.multiplier, pooled.multiplier);
        }
    }

    #[test]
    fn sharded_solve_matches_global_optimum() {
        let problem = scale_problem(5_000);
        let global = LagrangeSolver::default().solve(&problem).unwrap();
        for shards in [1, 4, 32] {
            let sharded = LagrangeSolver::default()
                .with_executor(Executor::thread_pool(4))
                .solve_sharded(&problem, shards)
                .unwrap();
            assert!(
                (sharded.perceived_freshness - global.perceived_freshness).abs() < 1e-9,
                "shards={shards}: PF {} vs global {}",
                sharded.perceived_freshness,
                global.perceived_freshness
            );
            assert!(
                (sharded.bandwidth_used - problem.bandwidth()).abs() < problem.bandwidth() * 1e-6
            );
            for (i, (a, b)) in sharded
                .frequencies
                .iter()
                .zip(&global.frequencies)
                .enumerate()
            {
                assert!(
                    (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
                    "shards={shards} element {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn sharded_solve_is_deterministic_across_worker_counts() {
        let problem = scale_problem(3_000);
        let base = LagrangeSolver::default()
            .solve_sharded(&problem, 16)
            .unwrap();
        for workers in [2, 8] {
            let pooled = LagrangeSolver::default()
                .with_executor(Executor::thread_pool(workers))
                .solve_sharded(&problem, 16)
                .unwrap();
            assert_eq!(base.frequencies, pooled.frequencies, "workers={workers}");
        }
    }

    #[test]
    fn sharded_solve_is_cost_aware_under_levy() {
        // Differential pin: the sharded path routes through the same
        // cost-aware allocation as the global solve, so a γ > 0 levy on
        // a costed problem must give the same optimum — not silently
        // revert to the cost-blind answer.
        let n = 4_000;
        let problem = Problem::builder()
            .change_rates((0..n).map(|i| 0.1 + (i % 17) as f64 * 0.3).collect())
            .access_weights((0..n).map(|i| 1.0 / (i + 1) as f64).collect())
            .sizes((0..n).map(|i| 0.25 + (i % 7) as f64 * 0.5).collect())
            .costs((0..n).map(|i| 0.5 + (i % 5) as f64).collect())
            .bandwidth(n as f64 / 4.0)
            .build()
            .unwrap();
        let gamma = 3e-4;
        let global = LagrangeSolver::default()
            .with_cost_weight(gamma)
            .solve(&problem)
            .unwrap();
        let blind = LagrangeSolver::default().solve(&problem).unwrap();
        assert!(
            problem.cost_used(&global.frequencies) < problem.cost_used(&blind.frequencies),
            "levy must reshape the costed optimum for the pin to mean anything"
        );
        for shards in [1, 4, 32] {
            let sharded = LagrangeSolver::default()
                .with_cost_weight(gamma)
                .solve_sharded(&problem, shards)
                .unwrap();
            assert_eq!(sharded.cost_multiplier, Some(gamma));
            assert!(
                (sharded.perceived_freshness - global.perceived_freshness).abs() < 1e-9,
                "shards={shards}: PF {} vs global {}",
                sharded.perceived_freshness,
                global.perceived_freshness
            );
            let (sc, gc) = (
                problem.cost_used(&sharded.frequencies),
                problem.cost_used(&global.frequencies),
            );
            assert!(
                (sc - gc).abs() <= gc * 1e-6,
                "shards={shards}: cost spend {sc} vs global {gc}"
            );
            for (i, (a, b)) in sharded
                .frequencies
                .iter()
                .zip(&global.frequencies)
                .enumerate()
            {
                assert!(
                    (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
                    "shards={shards} element {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn recorder_tracks_iterations_and_warm_starts() {
        let problem = toy(vec![0.2; 5]);
        let rec = Recorder::enabled();
        let solver = LagrangeSolver::default().with_recorder(rec.clone());
        let cold = solver.solve(&problem).unwrap();
        assert_eq!(rec.counter_value("solver.solves"), Some(1));
        assert_eq!(
            rec.counter_value("solver.outer_iters"),
            Some(cold.iterations as u64)
        );
        assert!(rec.counter_value("solver.inner_iters").unwrap() > 0);
        assert!(rec.counter_value("solver.warm_start.hit").is_none());

        let warm = solver
            .solve_warm(&problem, cold.multiplier.unwrap())
            .unwrap();
        assert_eq!(rec.counter_value("solver.warm_start.hit"), Some(1));
        solver.solve_warm(&problem, f64::NAN).unwrap();
        assert_eq!(rec.counter_value("solver.warm_start.miss"), Some(1));
        assert_eq!(rec.counter_value("solver.solves"), Some(3));

        // The per-outer-iteration KKT residual trail reaches the journal,
        // and instrumentation does not perturb the optimum.
        assert!(rec.metrics_json().unwrap().contains("solver.outer"));
        for (a, b) in cold.frequencies.iter().zip(&warm.frequencies) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    // ---- Cost-aware objective -------------------------------------------

    fn costed(costs: Vec<f64>, bandwidth: f64) -> Problem {
        Problem::builder()
            .change_rates(vec![1.0, 2.0, 3.0, 4.0, 5.0])
            .access_probs(vec![0.3, 0.25, 0.2, 0.15, 0.1])
            .costs(costs)
            .bandwidth(bandwidth)
            .build()
            .unwrap()
    }

    #[test]
    fn zero_cost_weight_is_bit_identical_to_plain_solve() {
        let problem = costed(vec![2.0, 0.5, 1.0, 3.0, 0.25], 5.0);
        let plain = LagrangeSolver::default().solve(&problem).unwrap();
        let costless = LagrangeSolver::default()
            .with_cost_weight(0.0)
            .solve(&problem)
            .unwrap();
        assert_eq!(plain.frequencies, costless.frequencies);
        assert_eq!(plain.multiplier, costless.multiplier);
        assert_eq!(plain.iterations, costless.iterations);
        assert_eq!(costless.cost_multiplier, None);
    }

    #[test]
    fn cost_aware_poisson_matches_closed_form() {
        // Poisson law: p·λ/(λ+f)² = μ·s + γ·c has the closed form
        // f = max(0, sqrt(pλ/(μs+γc)) − λ).
        let problem = costed(vec![2.0, 0.5, 1.0, 3.0, 0.25], 5.0);
        let solver = LagrangeSolver {
            policy: SyncPolicy::Poisson,
            cost_weight: 0.02,
            ..Default::default()
        };
        let sol = solver.solve(&problem).unwrap();
        let mu = sol.multiplier.unwrap();
        assert_eq!(sol.cost_multiplier, Some(0.02));
        for i in 0..5 {
            let p = problem.access_probs()[i];
            let lam = problem.change_rates()[i];
            let tau = mu + 0.02 * problem.poll_cost(i);
            let expected = ((p * lam / tau).sqrt() - lam).max(0.0);
            assert!(
                (sol.frequencies[i] - expected).abs() < 1e-5 * (1.0 + expected),
                "element {i}: {} vs closed form {expected}",
                sol.frequencies[i]
            );
        }
    }

    #[test]
    fn heavy_levy_leaves_budget_unspent() {
        // Ample bandwidth + a real levy: the optimum is interior (μ = 0)
        // and deliberately underspends the bandwidth budget.
        let problem = costed(vec![1.0; 5], 500.0);
        let sol = LagrangeSolver::default()
            .with_cost_weight(0.05)
            .solve(&problem)
            .unwrap();
        assert_eq!(sol.multiplier, Some(0.0));
        assert_eq!(sol.cost_multiplier, Some(0.05));
        assert!(
            sol.bandwidth_used < 500.0 * 0.9,
            "levy must stop spending before the budget: used {}",
            sol.bandwidth_used
        );
        // Each funded element sits at its price point p·g(f) = γ·c.
        let mu = 0.0;
        for i in 0..5 {
            let f = sol.frequencies[i];
            if f > 1e-9 {
                let marginal =
                    problem.access_probs()[i] * freshness_gradient(problem.change_rates()[i], f);
                let tau = mu + 0.05 * problem.poll_cost(i);
                assert!(
                    (marginal - tau).abs() < tau * 1e-4,
                    "element {i}: marginal {marginal:.6e} vs levy {tau:.6e}"
                );
            }
        }
    }

    #[test]
    fn pricing_out_everything_yields_empty_schedule() {
        // γ above max p/(λc): no element's marginal value covers its levy.
        let problem = costed(vec![1.0; 5], 5.0);
        let sol = LagrangeSolver::default()
            .with_cost_weight(10.0)
            .solve(&problem)
            .unwrap();
        assert!(sol.frequencies.iter().all(|&f| f == 0.0));
        assert_eq!(sol.multiplier, Some(0.0));
        assert_eq!(sol.cost_multiplier, Some(10.0));
    }

    #[test]
    fn larger_levy_never_increases_spend() {
        let problem = costed(vec![2.0, 0.5, 1.0, 3.0, 0.25], 5.0);
        let mut last_spend = f64::INFINITY;
        for gamma in [0.0, 0.005, 0.02, 0.05, 0.1, 0.3] {
            let sol = LagrangeSolver::default()
                .with_cost_weight(gamma)
                .solve(&problem)
                .unwrap();
            let spend = problem.cost_used(&sol.frequencies);
            assert!(
                spend <= last_spend + 1e-9,
                "spend must be monotone in γ: {spend} after {last_spend} at γ={gamma}"
            );
            last_spend = spend;
        }
    }

    #[test]
    fn cost_budget_solve_respects_both_budgets() {
        let problem = costed(vec![2.0, 0.5, 1.0, 3.0, 0.25], 5.0);
        let solver = LagrangeSolver::default();
        let plain = solver.solve(&problem).unwrap();
        let unconstrained_spend = problem.cost_used(&plain.frequencies);

        // A binding cost budget: tighter than the plain solve's spend.
        let cap = unconstrained_spend * 0.6;
        let sol = solver.solve_cost_budget(&problem, cap).unwrap();
        let spend = problem.cost_used(&sol.frequencies);
        assert!(
            spend <= cap * (1.0 + 1e-9),
            "cost budget overdrawn: {spend} > {cap}"
        );
        assert!(
            spend >= cap * 0.99,
            "dual bisection should spend close to the cap: {spend} vs {cap}"
        );
        let gamma = sol.cost_multiplier.expect("binding cap ⇒ positive levy");
        assert!(gamma > 0.0);
        assert!(sol.perceived_freshness < plain.perceived_freshness);

        // A slack cost budget returns the plain optimum untouched.
        let slack = solver
            .solve_cost_budget(&problem, unconstrained_spend * 2.0)
            .unwrap();
        assert_eq!(slack.frequencies, plain.frequencies);
        assert_eq!(slack.cost_multiplier, None);
    }

    #[test]
    fn cost_budget_rejects_bad_caps() {
        let problem = costed(vec![1.0; 5], 5.0);
        let solver = LagrangeSolver::default();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(solver.solve_cost_budget(&problem, bad).is_err());
        }
    }

    #[test]
    fn invalid_cost_weight_is_rejected() {
        let problem = costed(vec![1.0; 5], 5.0);
        for bad in [-0.5, f64::NAN, f64::INFINITY] {
            let res = LagrangeSolver::default()
                .with_cost_weight(bad)
                .solve(&problem);
            assert!(res.is_err(), "cost weight {bad} must be rejected");
        }
    }
}
