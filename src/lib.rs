//! # freshen — scalable application-aware data freshening
//!
//! Umbrella crate re-exporting the whole workspace: a reproduction of
//! Carney, Lee & Zdonik, *"Scalable Application-Aware Data Freshening"*
//! (ICDE 2003).
//!
//! A mirror site keeps copies of remote objects fresh by polling under a
//! bandwidth budget. This library chooses *how often to poll each object*
//! to maximize **perceived freshness** — freshness weighted by how much
//! users actually care about each object (their aggregated *profile*).
//!
//! | Sub-crate | What it holds |
//! |---|---|
//! | [`core`] | freshness math, problem/solution types, profiles, schedules |
//! | [`workload`] | Zipf/Gamma/Pareto/Poisson generators and paper scenarios |
//! | [`solver`] | exact Lagrange/KKT solver and baseline solvers |
//! | [`heuristics`] | scalable partitioning + k-means heuristics, FFA/FBA |
//! | [`sim`] | discrete-event simulator (source, mirror, evaluator) |
//! | [`obs`] | zero-dependency metrics/span/trace instrumentation |
//! | [`engine`] | online runtime: streaming estimation, drift-gated re-solves, budgeted dispatch |
//! | [`serve`] | service runtime: checkpoint/restore, graceful shutdown, HTTP control plane |
//! | [`fleet`] | multi-tenant fleet runtime: spec-declared tenants behind one control plane |
//!
//! ## End-to-end example
//!
//! ```
//! use freshen::prelude::*;
//!
//! // A 100-object mirror: Zipf interest, gamma change rates, budget 50.
//! let scenario = Scenario::builder()
//!     .num_objects(100)
//!     .updates_per_period(200.0)
//!     .syncs_per_period(50.0)
//!     .zipf_theta(1.0)
//!     .update_std_dev(1.0)
//!     .alignment(Alignment::ShuffledChange)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//! let problem = scenario.problem().unwrap();
//!
//! // Exact perceived-freshness-optimal schedule.
//! let optimal = LagrangeSolver::default().solve(&problem).unwrap();
//!
//! // Interest-blind baseline (Cho & Garcia-Molina's objective).
//! let gf = solve_general_freshness(&problem).unwrap();
//!
//! // Taking user interest into account can only help perceived freshness.
//! assert!(
//!     optimal.perceived_freshness >= problem.perceived_freshness(&gf.frequencies) - 1e-9
//! );
//! ```

// Compile README code blocks as doc tests so the front-page examples can
// never rot.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

pub use freshen_core as core;
pub use freshen_engine as engine;
pub use freshen_fleet as fleet;
pub use freshen_heuristics as heuristics;
pub use freshen_obs as obs;
pub use freshen_serve as serve;
pub use freshen_sim as sim;
pub use freshen_solver as solver;
pub use freshen_workload as workload;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use freshen_core::audit::{AuditReport, SolutionAudit};
    pub use freshen_core::freshness::{
        general_freshness, perceived_freshness, steady_state_freshness,
    };
    pub use freshen_core::policy::SyncPolicy;
    pub use freshen_core::problem::{Element, Problem, Solution};
    pub use freshen_core::profile::{MasterProfile, ProfileEstimator, UserProfile};
    pub use freshen_core::schedule::{FixedOrderSchedule, ScheduleStream, SyncOp};
    pub use freshen_core::topology::{TieredSchedule, Topology, TopologyBuilder};
    pub use freshen_engine::{Engine, EngineConfig, EngineReport, LedgerAudit, ResolvePolicy};
    pub use freshen_heuristics::allocate::AllocationPolicy;
    pub use freshen_heuristics::partition::PartitionCriterion;
    pub use freshen_heuristics::pipeline::{HeuristicConfig, HeuristicScheduler};
    pub use freshen_obs::Recorder;
    pub use freshen_serve::{ServeConfig, ServeOutcome, ServeWorkload, Server};
    pub use freshen_sim::{simulate_tiered, SimConfig, SimReport, Simulation, TieredSimConfig};
    pub use freshen_solver::lagrange::LagrangeSolver;
    pub use freshen_solver::{
        solve_general_freshness, solve_perceived_freshness, TieredSolution, TieredSolver,
    };
    pub use freshen_workload::scenario::{Alignment, Scenario};
}
